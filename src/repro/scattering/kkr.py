"""KKR multiple-scattering substrate (LSMS, §3.2).

LSMS computes, for every atom, the τ-matrix of its Local Interaction Zone
(LIZ): with single-site scattering matrices t and structure constants G
encoding the geometry,

    τ = (1 − t·G)⁻¹ · t,

and only the first (central-atom) diagonal block of τ is needed.  The two
HIP-kernel families of §3.2 are (1) structure-constant construction +
KKR-matrix assembly, and (2) the dense complex solve — by the historical
``zblock_lu`` block elimination or by rocSOLVER-style LU (the Frontier
port's choice).

The matrices here are real computations: free-propagator-like structure
constants over actual atom geometry, with the reciprocity symmetry
G(R) = G(−R)ᵀ preserved, and both solver paths agreeing to rounding.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.linalg.solver import invert_first_block_lu, zblock_lu


@dataclass(frozen=True)
class LIZ:
    """A central atom's Local Interaction Zone."""

    positions: np.ndarray  # (n_atoms, 3), central atom first at origin
    block_size: int  # angular-momentum block dimension (l_max+1)²

    @property
    def n_atoms(self) -> int:
        return len(self.positions)

    @property
    def matrix_size(self) -> int:
        return self.n_atoms * self.block_size


def build_liz(lattice_constant: float, radius: float, *, block_size: int = 16) -> LIZ:
    """Atoms of a simple-cubic lattice within *radius* of the origin.

    FePt-class production runs use LIZ radii covering O(100) atoms with
    (l_max+1)² = 16 blocks; the same construction at small radius makes
    test-size problems.
    """
    if radius <= 0 or lattice_constant <= 0:
        raise ValueError("radius and lattice constant must be positive")
    nmax = int(np.ceil(radius / lattice_constant))
    pts = []
    for i in range(-nmax, nmax + 1):
        for j in range(-nmax, nmax + 1):
            for k in range(-nmax, nmax + 1):
                p = lattice_constant * np.array([i, j, k], dtype=float)
                if np.linalg.norm(p) <= radius:
                    pts.append(p)
    pts.sort(key=lambda p: float(np.linalg.norm(p)))
    return LIZ(positions=np.array(pts), block_size=block_size)


def structure_constant_block(r_vec: np.ndarray, block_size: int, *,
                             energy: complex = 0.5 + 0.05j) -> np.ndarray:
    """The G(R) block between two sites separated by *r_vec*.

    A free-propagator-like form: magnitude decays as e^{i√E·R}/R with an
    angular modulation over the block indices, built so that reciprocity
    G(−R) = G(R)ᵀ holds exactly (the physical symmetry the real structure
    constants satisfy).
    """
    r = float(np.linalg.norm(r_vec))
    if r == 0.0:
        raise ValueError("structure constants are inter-site only (R != 0)")
    k = np.sqrt(energy)
    prefactor = np.exp(1j * k * r) / r
    lm = np.arange(block_size)
    # symmetric angular modulation: f(l, m) = f(m, l); odd part flips with R
    sym = np.cos(0.3 * (lm[:, None] + lm[None, :]))
    unit = r_vec / r
    odd_weight = float(unit @ np.array([1.0, 0.7, 0.4]))
    antisym = 0.2 * odd_weight * (lm[:, None] - lm[None, :]) / max(block_size - 1, 1)
    return prefactor * (sym + 1j * antisym)


def assemble_kkr_matrix(liz: LIZ, t_matrices: np.ndarray, *,
                        energy: complex = 0.5 + 0.05j) -> np.ndarray:
    """Assemble M = I − t·G over the LIZ (the §3.2 assembly kernel).

    ``t_matrices``: (n_atoms, b, b) single-site scattering blocks.
    """
    n, b = liz.n_atoms, liz.block_size
    if t_matrices.shape != (n, b, b):
        raise ValueError(f"t_matrices shape {t_matrices.shape} != {(n, b, b)}")
    m = np.eye(n * b, dtype=complex)
    for i in range(n):
        ti = t_matrices[i]
        for j in range(n):
            if i == j:
                continue
            g = structure_constant_block(
                liz.positions[j] - liz.positions[i], b, energy=energy
            )
            m[i * b : (i + 1) * b, j * b : (j + 1) * b] -= ti @ g
    return m


def make_t_matrices(liz: LIZ, *, strength: float = 0.3, seed: int = 0) -> np.ndarray:
    """Deterministic well-conditioned single-site t-matrices."""
    rng = np.random.default_rng(seed)
    b = liz.block_size
    base = strength * (
        rng.normal(size=(b, b)) + 1j * rng.normal(size=(b, b))
    ) / np.sqrt(b)
    out = np.empty((liz.n_atoms, b, b), dtype=complex)
    for i in range(liz.n_atoms):
        # mild site-to-site variation (alloy disorder)
        out[i] = base + 0.02 * strength * np.diag(
            rng.normal(size=b) + 1j * rng.normal(size=b)
        )
    return out


def tau_central_block(liz: LIZ, t_matrices: np.ndarray, *,
                      method: str = "getrf",
                      energy: complex = 0.5 + 0.05j) -> np.ndarray:
    """The central-atom τ block: τ₀₀ = [(1 − tG)⁻¹ t]₀₀.

    ``method``: ``"getrf"`` (full LU, the rocSOLVER path) or
    ``"zblock_lu"`` (the historical block-elimination algorithm).
    """
    b = liz.block_size
    m = assemble_kkr_matrix(liz, t_matrices, energy=energy)
    if method == "getrf":
        minv_block_col = invert_first_block_lu(m, b)
    elif method == "zblock_lu":
        minv_block_col = zblock_lu(m, b)
    else:
        raise ValueError(f"unknown method {method!r}")
    # τ₀₀ = [M⁻¹]₀₀ · t₀ since only the (0,0) block of M⁻¹·diag(t) survives
    # when reading the central block of τ = M⁻¹ t
    return minv_block_col @ t_matrices[0]
