"""Self-consistent field iteration: the LSMS production loop.

LSMS "solv[es] the Schrödinger equation of electrons within a solid using
density functional theory": each SCF iteration computes every atom's
τ-matrix from the current potentials, derives new charge-like moments from
τ, and mixes them into updated potentials until self-consistency.  The
structure (not the full DFT physics) is reproduced: the τ solve is the
real dense-complex computation, the "density" is the trace moment of the
central τ block, and linear mixing drives a fixed-point iteration whose
convergence the tests verify.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.scattering.kkr import LIZ, make_t_matrices, tau_central_block


@dataclass
class ScfHistory:
    """Per-iteration convergence record."""

    residuals: list[float] = field(default_factory=list)
    moments: list[float] = field(default_factory=list)

    @property
    def iterations(self) -> int:
        return len(self.residuals)

    @property
    def converged_monotonically(self) -> bool:
        r = self.residuals
        return all(a >= b for a, b in zip(r[2:], r[3:]))  # after settling


@dataclass
class ScfResult:
    moment: float
    potential_strength: float
    history: ScfHistory
    converged: bool


def density_moment(tau00: np.ndarray) -> float:
    """The density-like scalar extracted from the central τ block.

    Physically the site charge comes from an energy integral over
    Im Tr τ(E); the single-energy stand-in is |Im Tr τ| which inherits the
    right fixed-point structure.
    """
    return float(abs(np.imag(np.trace(tau00))))


def scf_iterate(liz: LIZ, *, target_moment: float = 0.5,
                initial_strength: float = 0.3, mixing: float = 0.4,
                tol: float = 1e-8, max_iter: int = 100,
                method: str = "getrf", seed: int = 0) -> ScfResult:
    """Fixed-point SCF: adjust the t-matrix strength until the density
    moment matches ``target_moment``.

    The map ``strength → moment(strength)`` is smooth and monotone for
    well-conditioned LIZ problems, so linear mixing converges; the tests
    assert geometric residual decay and method-independence of the fixed
    point (getrf vs zblock_lu — the §3.2 solver swap must not change the
    physics).
    """
    if not 0 < mixing <= 1:
        raise ValueError("mixing must be in (0, 1]")
    strength = initial_strength
    history = ScfHistory()
    for _ in range(max_iter):
        t = make_t_matrices(liz, strength=strength, seed=seed)
        tau00 = tau_central_block(liz, t, method=method)
        moment = density_moment(tau00)
        residual = abs(moment - target_moment)
        history.residuals.append(residual)
        history.moments.append(moment)
        if residual < tol:
            return ScfResult(moment=moment, potential_strength=strength,
                             history=history, converged=True)
        # secant-flavoured linear mixing: scale strength toward the target
        if moment <= 0:
            strength *= 2.0
            continue
        proposal = strength * target_moment / moment
        strength = (1 - mixing) * strength + mixing * proposal
    return ScfResult(moment=history.moments[-1], potential_strength=strength,
                     history=history, converged=False)
