"""repro.service: a Balsam-style multi-tenant campaign scheduler.

The HPC facilities the paper targets don't run one application at a
time: they run *campaigns* — thousands of jobs from many teams packed
onto one machine by a batch scheduler, with workflow services like
Balsam (Salim et al. 2018) brokering between user job streams and the
machine's queue.  This package reproduces that layer over the simulated
machine pool:

* :mod:`~repro.service.job` — jobs and Young/Daly-informed walltime
  estimates over any Checkpointable campaign;
* :mod:`~repro.service.pool` — counted machine pools built from the
  hardware catalog, plus the shared spare pool with its audit log;
* :mod:`~repro.service.fairshare` — decayed per-tenant usage and the
  aging term that guarantees no starvation;
* :mod:`~repro.service.scheduler` — FIFO-with-priority + EASY backfill
  planning as a pure function;
* :mod:`~repro.service.arrival` — seeded open-loop Poisson arrivals;
* :mod:`~repro.service.engine` — the deterministic event loop running
  every job through :class:`~repro.resilience.runner.ResilientRunner`
  with fault injection on;
* :mod:`~repro.service.slo` — jobs/sec, queue-wait percentiles,
  utilization and per-tenant shares.

Everything runs on simulated time from explicit seeds — the whole
campaign history is bit-reproducible, and every job's final state is
bit-identical to running its campaign standalone.
"""

from repro.service.arrival import OpenLoopArrivals, default_templates
from repro.service.engine import (
    CampaignService,
    ServiceResult,
    execute_campaign,
    failure_free_checksum,
)
from repro.service.fairshare import FairShareError, FairShareLedger
from repro.service.job import (
    Job,
    JobError,
    JobState,
    JobTemplate,
    checkpoint_interval_steps,
    combined_fatal_mtbf,
    walltime_estimate,
)
from repro.service.pool import (
    MachinePool,
    PoolError,
    SpareEvent,
    SparePool,
    build_pool,
)
from repro.service.scheduler import (
    EasyBackfillScheduler,
    Reservation,
    RunningView,
    ScheduledStart,
    SchedulerPlan,
)
from repro.service.slo import (
    QUEUE_WAIT_EDGES,
    SloReport,
    TenantShare,
    compute_slo,
    exact_percentile,
)

__all__ = [
    "CampaignService",
    "EasyBackfillScheduler",
    "FairShareError",
    "FairShareLedger",
    "Job",
    "JobError",
    "JobState",
    "JobTemplate",
    "MachinePool",
    "OpenLoopArrivals",
    "PoolError",
    "QUEUE_WAIT_EDGES",
    "Reservation",
    "RunningView",
    "ScheduledStart",
    "SchedulerPlan",
    "ServiceResult",
    "SloReport",
    "SpareEvent",
    "SparePool",
    "TenantShare",
    "build_pool",
    "checkpoint_interval_steps",
    "combined_fatal_mtbf",
    "compute_slo",
    "default_templates",
    "exact_percentile",
    "execute_campaign",
    "failure_free_checksum",
    "walltime_estimate",
]
