"""Seeded open-loop arrival process: the service's offered load.

The SLO benchmark discipline for a multi-tenant service is an
**open-loop** arrival process: jobs arrive on their own Poisson clock
regardless of how backed up the queue is, so queue-wait percentiles
reflect the service's real behaviour under pressure rather than the
closed-loop self-throttling a synchronous driver would impose.

Arrivals are a pure function of the seed: one
``np.random.default_rng(seed)`` draws the exponential inter-arrival
gaps, the tenant of each job, its template from the size mix, and its
app seed — rerunning the process reproduces the identical submission
schedule byte for byte, which is what makes the soak's bit-identity
acceptance test possible.

The default job mix wraps :class:`~repro.apps.exasky.ExaskyCampaign`
(cheap, deterministic, fully Checkpointable) in four sizes from
single-node to hero; any other Checkpointable campaign slots in through
its own :class:`~repro.service.job.JobTemplate`.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.service.job import Job, JobError, JobTemplate


def default_templates() -> tuple[JobTemplate, ...]:
    """The standard HACC-campaign size mix (small/medium/wide/hero)."""
    from repro.apps.exasky import ExaskyCampaign, ExaskyConfig, step_time_per_gpu
    from repro.hardware.catalog import FRONTIER

    step_cost = step_time_per_gpu(FRONTIER.node.gpu, ExaskyConfig(),
                                  wavefront64_tuned=True)

    def make(nparticles: int):
        def build(seed: int):
            return ExaskyCampaign(nparticles=nparticles, seed=seed)
        return build

    return (
        JobTemplate("hacc-small", nodes=1, nsteps=4,
                    est_step_cost=step_cost, make_app=make(64)),
        JobTemplate("hacc-medium", nodes=2, nsteps=6,
                    est_step_cost=step_cost, make_app=make(96)),
        JobTemplate("hacc-wide", nodes=4, nsteps=8,
                    est_step_cost=step_cost, make_app=make(128), priority=1),
        JobTemplate("hacc-hero", nodes=8, nsteps=10,
                    est_step_cost=step_cost, make_app=make(160), priority=2),
    )


class OpenLoopArrivals:
    """Poisson arrivals over a tenant mix and a job-size mix.

    ``rate`` is jobs per simulated second across all tenants;
    ``tenants`` maps tenant id -> relative traffic weight;
    ``template_weights`` (optional, parallel to ``templates``) skews the
    size mix — omitted means uniform.
    """

    def __init__(self, *, rate: float, tenants: Mapping[str, float],
                 templates: Sequence[JobTemplate] | None = None,
                 template_weights: Sequence[float] | None = None,
                 seed: int = 0) -> None:
        if rate <= 0:
            raise JobError("arrival rate must be positive")
        if not tenants:
            raise JobError("need at least one tenant")
        self.rate = float(rate)
        self.tenant_names = tuple(sorted(tenants))
        weights = np.array([float(tenants[t]) for t in self.tenant_names])
        if (weights <= 0).any():
            raise JobError("tenant weights must be positive")
        self.tenant_p = weights / weights.sum()
        self.templates = tuple(templates if templates is not None
                               else default_templates())
        if not self.templates:
            raise JobError("need at least one job template")
        if template_weights is None:
            self.template_p = np.full(len(self.templates),
                                      1.0 / len(self.templates))
        else:
            tw = np.array([float(w) for w in template_weights])
            if tw.shape != (len(self.templates),) or (tw <= 0).any():
                raise JobError("template_weights must be positive and "
                               "parallel to templates")
            self.template_p = tw / tw.sum()
        self.rng = np.random.default_rng(seed)
        self._next_id = 0

    def draw(self, njobs: int, *, start: float = 0.0) -> list[Job]:
        """The next *njobs* submissions, in arrival order."""
        if njobs < 1:
            raise JobError("need at least one job")
        rng = self.rng
        gaps = rng.exponential(1.0 / self.rate, njobs)
        times = start + np.cumsum(gaps)
        tenant_idx = rng.choice(len(self.tenant_names), size=njobs,
                                p=self.tenant_p)
        template_idx = rng.choice(len(self.templates), size=njobs,
                                  p=self.template_p)
        app_seeds = rng.integers(2**31, size=njobs)
        jobs = []
        for k in range(njobs):
            jobs.append(Job(
                job_id=self._next_id,
                tenant=self.tenant_names[int(tenant_idx[k])],
                template=self.templates[int(template_idx[k])],
                app_seed=int(app_seeds[k]),
                submit_time=float(times[k]),
            ))
            self._next_id += 1
        return jobs

    def offered_load(self) -> float:
        """Mean node-seconds of raw work offered per second: the open
        loop's pressure, to be read against the pool's node count."""
        mean_work = float(sum(
            p * t.nodes * t.nsteps * t.est_step_cost
            for p, t in zip(self.template_p, self.templates)
        ))
        return self.rate * mean_work
