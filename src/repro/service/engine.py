"""The event-driven campaign service: Balsam over the simulated machine.

:class:`CampaignService` is the closed world where everything this
package models meets: an open-loop arrival process submits
:class:`~repro.service.job.Job`\\ s, the EASY backfill scheduler packs
them onto a :class:`~repro.service.pool.MachinePool`, and each started
job runs its campaign through a
:class:`~repro.resilience.runner.ResilientRunner` with fault injection
on — completions, failures and requeues all advance one deterministic
event loop on the service's simulated clock.

Determinism contract (audited by the same suite as the resilience
layer): no wall clock anywhere, every random draw comes from an
explicitly seeded generator, every tie in the event heap is broken by a
monotone sequence number, and per-job fault schedules derive from
``SeedSequence([service_seed, job_id, attempt])`` — so the *entire
campaign history* (start times, spare-pool audit log, SLO numbers, final
state checksums) is a pure function of the seed and the submitted jobs.

Execution semantics worth naming: when the scheduler starts a job, its
whole campaign is executed synchronously and its completion event is
scheduled ``wall_clock`` simulated seconds later — so resources the
campaign's recovery acquires (shared spares) are committed at the job's
*start* time (allocation-time reservation).  That is coarser than
interleaving every job's internal steps, but it keeps job executions
bit-independent, which is what the standalone-vs-service differential
test leans on.

Bit-identity: because every recovery policy finishes bit-identical to a
failure-free run (the PR 4 contract), a job's ``result_checksum`` must
equal the checksum of its app stepped ``nsteps`` times with no service,
no faults, no runner at all (:func:`failure_free_checksum`) — the
acceptance criterion the soak benchmark asserts for every job.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.hardware.machine import MachineSpec
from repro.mpisim.comm import SimComm
from repro.mpisim.partition import RankGroupPartitioner
from repro.mpisim.scaled import ScaledComm
from repro.observability.metrics import MetricsRegistry
from repro.resilience.faults import FaultInjector, FaultKind
from repro.resilience.runner import (
    CheckpointCostModel,
    RecoveryPolicy,
    ResilienceError,
    ResilienceStats,
    ResilientRunner,
    make_policy,
)
from repro.resilience.snapshot import encode_snapshot, snapshot_checksum
from repro.service.job import (
    Job,
    JobError,
    JobState,
    checkpoint_interval_steps,
    combined_fatal_mtbf,
    walltime_estimate,
)
from repro.service.pool import MachinePool
from repro.service.scheduler import (
    EasyBackfillScheduler,
    Reservation,
    RunningView,
    ScheduledStart,
)
from repro.service.slo import QUEUE_WAIT_EDGES, SloReport, compute_slo

if TYPE_CHECKING:  # pragma: no cover - import only for annotations
    from repro.observability.tracer import Tracer

# event-kind ordering at equal timestamps: completions free nodes before
# requeues re-enqueue, and both before new arrivals see the machine
_COMPLETE, _REQUEUE, _ARRIVAL = 0, 1, 2

#: jobs at or above this width run their campaign communicator in
#: representative-rank mode (a few exemplars standing for every node)
#: instead of materializing one SimComm rank per node — what lets
#: fault-injected campaigns execute at 4,096-9,074 nodes.  Below it the
#: all-live SimComm is cheap and exact.
SCALED_COMM_MIN_NODES = 256


def _campaign_comm(nodes: int, fabric) -> SimComm:
    """The campaign communicator for a job of *nodes* nodes: all-live
    below :data:`SCALED_COMM_MIN_NODES`, representative-rank above.
    Fault targets, shrink survivors and rank accounting all speak
    machine numbering on either, so the runner code path is identical.
    """
    if nodes < SCALED_COMM_MIN_NODES:
        return SimComm(nodes, fabric)
    partition = RankGroupPartitioner("endpoints").partition(nodes)
    return ScaledComm(nodes, fabric, partition=partition)


def execute_campaign(job: Job, machine: MachineSpec, *, seed: int,
                     fault_mtbf: dict | None = None,
                     cost_model: CheckpointCostModel | None = None,
                     policy: RecoveryPolicy | str = "restart",
                     tracer: "Tracer | None" = None,
                     max_retries: int = 8,
                     backoff_base: float = 1.0
                     ) -> tuple[ResilienceStats, str]:
    """Run one job's campaign exactly as the service would.

    Module-level so the differential tests can execute the *same* code
    path standalone: same app construction, same
    ``SeedSequence([seed, job_id, attempt])`` fault schedule, same
    runner configuration — only the recovery policy's spare source (and
    therefore timing, never bits) may differ.  Returns the runner stats
    and the final-state snapshot checksum.
    """
    app = job.make_app()
    if tracer is not None and hasattr(app, "tracer"):
        # any campaign that can carry a tracer gets the service's, so
        # every scheduled app lands its spans on the shared timeline
        app.tracer = tracer
    injector = None
    if fault_mtbf:
        rng = np.random.default_rng(
            np.random.SeedSequence([seed, job.job_id, job.attempt]))
        injector = FaultInjector(rng=rng, mtbf=dict(fault_mtbf),
                                 max_target=max(job.nodes, 1))
    comm = None
    if machine.node.interconnect is not None:
        comm = _campaign_comm(job.nodes, machine.node.interconnect)
    runner = ResilientRunner(
        app,
        checkpoint_interval=max(job.checkpoint_interval, 1),
        injector=injector,
        cost_model=cost_model,
        comm=comm,
        policy=policy,
        max_retries=max_retries,
        backoff_base=backoff_base,
        tracer=tracer,
    )
    stats = runner.run(job.nsteps)
    return stats, snapshot_checksum(encode_snapshot(app.snapshot()))


def failure_free_checksum(job: Job) -> str:
    """The job's campaign stepped with no service, faults or runner —
    the ground truth every service execution must match bit for bit."""
    app = job.make_app()
    for _ in range(job.nsteps):
        app.step()
    return snapshot_checksum(encode_snapshot(app.snapshot()))


@dataclass
class ServiceResult:
    """Everything a finished campaign leaves behind."""

    jobs: list[Job]
    slo: SloReport
    metrics: MetricsRegistry
    pool: MachinePool
    requeues: int
    makespan: float

    @property
    def completed(self) -> list[Job]:
        return [j for j in self.jobs if j.state is JobState.COMPLETED]

    @property
    def failed(self) -> list[Job]:
        return [j for j in self.jobs if j.state is JobState.FAILED]

    def render(self) -> str:
        return self.slo.render() + "\n" + self.pool.describe()


@dataclass
class _RunningEntry:
    job: Job
    est_end: float
    recovery_spares: int = 0
    failed: bool = field(default=False)


class CampaignService:
    """Multi-tenant campaign scheduler over one simulated machine pool."""

    def __init__(self, pool: MachinePool, *, seed: int = 0,
                 fault_mtbf: dict | None = None,
                 cost_model: CheckpointCostModel | None = None,
                 recovery: str = "spare",
                 scheduler: EasyBackfillScheduler | None = None,
                 tracer: "Tracer | None" = None,
                 trace_campaigns: bool = False,
                 max_requeues: int = 2,
                 max_retries: int = 8,
                 backoff_base: float = 1.0,
                 requeue_delay: float | None = None) -> None:
        self.pool = pool
        self.seed = int(seed)
        self.fault_mtbf = (
            {FaultKind(k): float(v) for k, v in fault_mtbf.items()}
            if fault_mtbf else None
        )
        self.cost_model = cost_model or CheckpointCostModel(restart_cost=10.0)
        if recovery not in ("restart", "shrink", "spare"):
            raise JobError(f"unknown recovery mode {recovery!r}")
        self.recovery = recovery
        self.scheduler = scheduler or EasyBackfillScheduler()
        self.tracer = tracer
        self.trace_campaigns = trace_campaigns
        if max_requeues < 0:
            raise JobError("max_requeues must be non-negative")
        self.max_requeues = max_requeues
        self.max_retries = max_retries
        if backoff_base < 0:
            raise JobError("backoff_base must be non-negative")
        self.backoff_base = backoff_base
        self.requeue_delay = (requeue_delay if requeue_delay is not None
                              else self.cost_model.restart_cost)

        self.metrics = tracer.metrics if tracer is not None else MetricsRegistry()
        self.now = 0.0
        self.jobs: list[Job] = []
        self.queue: list[Job] = []
        self.running: dict[int, _RunningEntry] = {}
        self.requeues = 0
        self._events: list[tuple[float, int, int, Job]] = []
        self._seq = 0
        self._mtbf = combined_fatal_mtbf(self.fault_mtbf)
        self._snapshot_bytes: dict[str, int] = {}
        self._last_reservation: Reservation | None = None

    # -- submission ----------------------------------------------------------

    def submit(self, jobs: Sequence[Job]) -> None:
        for job in jobs:
            if job.nodes > self.pool.nodes:
                raise JobError(
                    f"job {job.job_id} requests {job.nodes} nodes; the "
                    f"pool has {self.pool.nodes}"
                )
            delta = self.cost_model.write_time(self._template_bytes(job))
            job.walltime_estimate = walltime_estimate(
                job.nsteps, job.est_step_cost, delta, self._mtbf,
                restart_cost=self.cost_model.restart_cost,
            )
            job.checkpoint_interval = checkpoint_interval_steps(
                job.est_step_cost, delta, self._mtbf, nsteps=job.nsteps)
            job.state = JobState.PENDING
            self.jobs.append(job)
            self._push(job.submit_time, _ARRIVAL, job)
            self.metrics.counter("service.jobs_submitted").inc()

    def _template_bytes(self, job: Job) -> int:
        """Estimated checkpoint size for the job's template (probed once
        per template from a seed-0 instance; sizes are seed-independent)."""
        name = job.template.name
        if name not in self._snapshot_bytes:
            probe = job.template.make_app(0)
            self._snapshot_bytes[name] = len(encode_snapshot(probe.snapshot()))
        return self._snapshot_bytes[name]

    # -- the event loop ------------------------------------------------------

    def run(self, jobs: Sequence[Job] | None = None) -> ServiceResult:
        if jobs is not None:
            self.submit(jobs)
        if not self._events:
            raise JobError("nothing submitted")
        tr = self.tracer
        run_idx = None
        if tr is not None:
            run_idx = tr.begin("service.run", ts=self._events[0][0],
                               cat="service", pid="service", tid="engine",
                               njobs=len(self.jobs))
        while self._events:
            t, kind, _, job = heapq.heappop(self._events)
            self.now = max(self.now, t)
            self.pool.spares.now = self.now
            if kind == _COMPLETE:
                self._on_complete(job)
            elif kind == _REQUEUE:
                self._on_requeue(job)
            else:
                self._on_arrival(job)
            self._schedule_cycle()
        self._finalize()
        if run_idx is not None:
            tr.end(run_idx, ts=self.now)
        slo = compute_slo(self.jobs, self.pool, requeues=self.requeues)
        return ServiceResult(jobs=self.jobs, slo=slo, metrics=self.metrics,
                             pool=self.pool, requeues=self.requeues,
                             makespan=slo.makespan)

    def _push(self, t: float, kind: int, job: Job) -> None:
        self._seq += 1
        heapq.heappush(self._events, (t, kind, self._seq, job))

    def _on_arrival(self, job: Job) -> None:
        self.queue.append(job)

    def _on_complete(self, job: Job) -> None:
        entry = self.running.pop(job.job_id)
        self._release_resources(job, entry)
        job.state = JobState.COMPLETED
        job.end_time = self.now
        duration = job.duration or 0.0
        self.scheduler.fairshare.charge(job.tenant, job.nodes * duration,
                                        self.now)
        m = self.metrics
        m.counter("service.jobs_completed").inc()
        m.counter(f"service.tenant_completed[{job.tenant}]").inc()
        m.counter("service.node_seconds_delivered").inc(job.nodes * duration)
        m.histogram("service.queue_wait", QUEUE_WAIT_EDGES).observe(
            job.queue_wait or 0.0)
        tr = self.tracer
        if tr is not None:
            tr.record(f"job.{job.template.name}", job.start_time, duration,
                      cat="service", pid="service",
                      tid=f"tenant:{job.tenant}", job=int(job.job_id),
                      nodes=int(job.nodes), kind=job.start_kind or "",
                      wait=float(job.queue_wait or 0.0))

    def _on_requeue(self, job: Job) -> None:
        entry = self.running.pop(job.job_id)
        self._release_resources(job, entry)
        job.attempt += 1
        job.start_time = None
        job.start_kind = None
        job.borrowed_spares = 0
        if job.attempt > self.max_requeues:
            job.state = JobState.FAILED
            job.end_time = self.now
            self.metrics.counter("service.jobs_failed").inc()
            return
        job.state = JobState.PENDING
        self.requeues += 1
        self.metrics.counter("service.jobs_requeued").inc()
        self.queue.append(job)

    def _release_resources(self, job: Job, entry: _RunningEntry) -> None:
        pool_nodes = job.nodes - job.borrowed_spares
        if pool_nodes > 0:
            self.pool.release(pool_nodes)
        if job.borrowed_spares:
            self.pool.spares.release(job.borrowed_spares, "scheduler-return")
        if entry.recovery_spares:
            self.pool.spares.release(entry.recovery_spares, "recovery-return")

    # -- scheduling ----------------------------------------------------------

    def _running_views(self) -> list[RunningView]:
        return [
            RunningView(e.job.nodes - e.job.borrowed_spares, e.est_end)
            for _, e in sorted(self.running.items())
        ]

    def _schedule_cycle(self) -> None:
        if not self.queue:
            return
        plan = self.scheduler.plan(
            self.queue, self.pool.free_nodes, self._running_views(), self.now,
            spare_available=self.pool.spares.available,
        )
        tr = self.tracer
        if (tr is not None and plan.reservation is not None
                and plan.reservation != self._last_reservation):
            tr.record("sched.reserve", self.now, 0.0, cat="service",
                      pid="service", tid="scheduler",
                      job=int(plan.reservation.job_id),
                      start_at=float(plan.reservation.start_at))
        self._last_reservation = plan.reservation
        for start in plan.starts:
            self._start_job(start)

    def _start_job(self, start: ScheduledStart) -> None:
        job, borrowed = start.job, start.borrowed_spares
        if borrowed:
            granted = self.pool.spares.acquire_many(borrowed, "scheduler")
            if granted < borrowed:
                # a recovery drained the pool inside this same cycle:
                # give back what we got and retry at the next event
                if granted:
                    self.pool.spares.release(granted, "scheduler-return")
                return
            self.metrics.counter("service.spares_borrowed").inc(borrowed)
        if job.nodes - borrowed > 0:
            self.pool.allocate(job.nodes - borrowed)
        self.queue.remove(job)
        job.state = JobState.RUNNING
        job.start_time = self.now
        job.start_kind = start.kind
        job.borrowed_spares = borrowed
        m = self.metrics
        m.counter("service.jobs_started").inc()
        m.counter(f"service.starts[{start.kind}]").inc()
        tr = self.tracer
        if tr is not None:
            tr.record(f"sched.{start.kind}", self.now, 0.0, cat="service",
                      pid="service", tid="scheduler", job=int(job.job_id),
                      tenant=job.tenant, nodes=int(job.nodes),
                      wait=float(self.now - job.submit_time))

        stats, checksum, recovery_spares = self._execute(job)
        if stats is None:
            # the campaign died (retries exhausted): hold the nodes for
            # the relaunch round-trip, then requeue or fail terminally
            est_end = self.now + self.requeue_delay
            self.running[job.job_id] = _RunningEntry(
                job, est_end, recovery_spares, failed=True)
            self._push(est_end, _REQUEUE, job)
            return
        job.stats = stats
        job.result_checksum = checksum
        m.counter("service.recovery_spares_used").inc(recovery_spares)
        self.running[job.job_id] = _RunningEntry(
            job, self.now + job.walltime_estimate, recovery_spares)
        self._push(self.now + stats.wall_clock, _COMPLETE, job)

    def _make_policy(self) -> RecoveryPolicy:
        if self.recovery == "spare":
            # the shared pool: recovery and scheduling contend here
            return make_policy("spare", pool=self.pool.spares)
        return make_policy(self.recovery)

    def _execute(self, job: Job
                 ) -> tuple[ResilienceStats | None, str | None, int]:
        policy = self._make_policy()
        tracer = self.tracer if self.trace_campaigns else None
        try:
            stats, checksum = execute_campaign(
                job, self.pool.machine, seed=self.seed,
                fault_mtbf=self.fault_mtbf, cost_model=self.cost_model,
                policy=policy, tracer=tracer, max_retries=self.max_retries,
                backoff_base=self.backoff_base,
            )
        except ResilienceError:
            return None, None, getattr(policy, "acquired", 0)
        return stats, checksum, getattr(policy, "acquired", 0)

    # -- wrap-up -------------------------------------------------------------

    def _finalize(self) -> None:
        m = self.metrics
        slo = compute_slo(self.jobs, self.pool, requeues=self.requeues)
        m.gauge("service.makespan").set(slo.makespan)
        m.gauge("service.jobs_per_sec").set(slo.jobs_per_sec)
        m.gauge("service.utilization").set(slo.utilization)
        m.gauge("service.p50_queue_wait").set(slo.p50_queue_wait)
        m.gauge("service.p99_queue_wait").set(slo.p99_queue_wait)
        m.gauge("service.spare_denials").set(self.pool.spares.denials)
