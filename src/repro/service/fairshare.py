"""Per-tenant fair-share accounting with simulated-time decay.

Production batch systems (Slurm's fair-tree, Balsam's per-user queues)
keep multi-tenant machines honest with two opposing forces:

* **usage decay** — a tenant's consumed node-seconds count against its
  future priority, but the debt *decays* (half-life ``half_life``
  simulated seconds), so yesterday's hero run doesn't starve today's
  small job forever;
* **aging** — a waiting job's priority grows linearly with queue time,
  so no job waits unboundedly behind a stream of higher-priority work.

The effective priority is

    base + age_weight * (now - submit) - share_weight * usage / usage_norm

and because the age term is unbounded while the share penalty is always
``>= 0`` and base priorities live in a bounded band, every job's
effective priority eventually exceeds any freshly-submitted competitor's
— the structural no-starvation property the hypothesis suite pins down
(:func:`FairShareLedger.starvation_bound`).

Decay is applied lazily: usage is stored with its last-update timestamp
and scaled by ``0.5 ** (dt / half_life)`` on read — no clocks, no
per-tick sweeps, bit-reproducible.
"""

from __future__ import annotations

from repro.service.job import Job


class FairShareError(ValueError):
    """Invalid ledger configuration."""


class FairShareLedger:
    """Decayed per-tenant usage and the priority ordering built on it."""

    def __init__(self, *, half_life: float = 600.0, share_weight: float = 1.0,
                 age_weight: float = 0.05, usage_norm: float = 100.0) -> None:
        if half_life <= 0:
            raise FairShareError("half_life must be positive")
        if share_weight < 0 or age_weight < 0:
            raise FairShareError("weights must be non-negative")
        if age_weight == 0:
            raise FairShareError(
                "age_weight must be positive: aging is the no-starvation "
                "guarantee, not an optional nicety")
        if usage_norm <= 0:
            raise FairShareError("usage_norm must be positive")
        self.half_life = float(half_life)
        self.share_weight = float(share_weight)
        self.age_weight = float(age_weight)
        self.usage_norm = float(usage_norm)
        self._usage: dict[str, tuple[float, float]] = {}  # tenant -> (value, t)

    # -- usage ---------------------------------------------------------------

    def usage(self, tenant: str, now: float) -> float:
        """The tenant's decayed node-seconds of accumulated usage."""
        entry = self._usage.get(tenant)
        if entry is None:
            return 0.0
        value, t = entry
        dt = max(now - t, 0.0)
        return value * 0.5 ** (dt / self.half_life)

    def charge(self, tenant: str, node_seconds: float, now: float) -> None:
        """Bill *node_seconds* of machine time to *tenant* at time *now*."""
        if node_seconds < 0:
            raise FairShareError("cannot charge negative usage")
        self._usage[tenant] = (self.usage(tenant, now) + node_seconds, now)

    def tenants(self) -> tuple[str, ...]:
        return tuple(sorted(self._usage))

    # -- ordering ------------------------------------------------------------

    def effective_priority(self, job: Job, now: float) -> float:
        age = max(now - job.submit_time, 0.0)
        share = self.usage(job.tenant, now) / self.usage_norm
        return (float(job.priority) + self.age_weight * age
                - self.share_weight * share)

    def order_key(self, job: Job, now: float) -> tuple:
        """Deterministic total order: effective priority, then FIFO.

        ``job_id`` breaks exact ties (ids are assigned in submission
        order), so the queue order is a pure function of its contents —
        never of dict iteration or sort instability.
        """
        return (-self.effective_priority(job, now), job.submit_time,
                job.job_id)

    def starvation_bound(self, priority_span: float) -> float:
        """Waiting time after which a job outranks ANY fresh competitor.

        A job aged ``T`` has effective priority at least
        ``base_min + age_weight * T``; a fresh job at most ``base_max``
        (its share penalty only subtracts).  With *priority_span* =
        ``base_max - base_min``, ``T > span / age_weight`` guarantees the
        old job sorts first — the bound the property test checks.
        """
        if priority_span < 0:
            raise FairShareError("priority span must be non-negative")
        return priority_span / self.age_weight
