"""The service's job model: a tenant's campaign as a schedulable unit.

Balsam's core abstraction (Salim et al. 2018) is the *job*: a unit of
work a user hands a shared machine, carrying who owns it, what it needs
(nodes, walltime) and what to run.  This module is that abstraction over
the reproduction's campaigns: a :class:`Job` wraps any
:class:`~repro.resilience.runner.SteppedApp` (every Checkpointable
campaign driver — HACC kick-drift, Pele chemistry, ...) behind a
seed-deterministic factory, so the service can construct a *fresh*,
bit-reproducible instance per execution attempt and the differential
tests can rebuild the identical campaign standalone.

Walltime estimates are Young/Daly-informed rather than guessed: the
expected overhead of checkpointing at the optimal interval under the
job's fault environment (:func:`walltime_estimate`, via
:mod:`repro.resilience.daly`) inflates the raw ``nsteps x step_cost``
work, and the same arithmetic fixes the runner's checkpoint interval in
steps (:func:`checkpoint_interval_steps`).  EASY backfill's guarantee
only holds when estimates are upper bounds, so a safety factor rides on
top — exactly the pessimism real users bake into their batch scripts.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from enum import Enum
from typing import Callable

from repro.resilience.daly import predicted_overhead, young_daly_interval
from repro.resilience.runner import ResilienceStats, SteppedApp


class JobError(ValueError):
    """Invalid job specification (zero nodes, negative steps, ...)."""


class JobState(str, Enum):
    PENDING = "pending"
    RUNNING = "running"
    COMPLETED = "completed"
    FAILED = "failed"


@dataclass(frozen=True)
class JobTemplate:
    """A reusable job shape: app factory + resource request + priority.

    ``make_app(seed)`` must be deterministic — same seed, same campaign,
    bit for bit — because the engine reconstructs the app on every
    execution attempt and the differential suite reconstructs it again
    standalone.  ``est_step_cost`` is the simulated seconds one step is
    expected to take (apps expose it as ``step_cost``); it feeds the
    walltime estimate and the Young/Daly checkpoint interval.
    """

    name: str
    nodes: int
    nsteps: int
    est_step_cost: float
    make_app: Callable[[int], SteppedApp]
    priority: int = 0

    def __post_init__(self) -> None:
        if self.nodes < 1:
            raise JobError(f"template {self.name!r}: needs at least 1 node")
        if self.nsteps < 1:
            raise JobError(f"template {self.name!r}: needs at least 1 step")
        if self.est_step_cost <= 0:
            raise JobError(
                f"template {self.name!r}: est_step_cost must be positive")


@dataclass
class Job:
    """One submitted campaign: template + tenant + seed + queue lifecycle.

    The frozen identity lives in the first block; everything below
    ``state`` is runtime bookkeeping the engine fills in as the job moves
    through the queue.  ``result_checksum`` is the snapshot checksum of
    the final app state — the value the bit-identity acceptance test
    compares against a standalone run.
    """

    job_id: int
    tenant: str
    template: JobTemplate
    app_seed: int
    submit_time: float
    priority: int | None = None  # None: inherit the template's

    # -- runtime state, owned by the engine ---------------------------------
    state: JobState = JobState.PENDING
    attempt: int = 0
    walltime_estimate: float = 0.0
    checkpoint_interval: int = 1
    start_time: float | None = None
    end_time: float | None = None
    start_kind: str | None = None  # "head" | "backfill" | "spare-borrow"
    borrowed_spares: int = 0
    result_checksum: str | None = None
    stats: ResilienceStats | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.submit_time < 0:
            raise JobError(f"job {self.job_id}: negative submit time")
        if self.priority is None:
            self.priority = self.template.priority

    @property
    def nodes(self) -> int:
        return self.template.nodes

    @property
    def nsteps(self) -> int:
        return self.template.nsteps

    @property
    def est_step_cost(self) -> float:
        return self.template.est_step_cost

    @property
    def work(self) -> float:
        """Raw useful work: simulated seconds of failure-free stepping."""
        return self.nsteps * self.est_step_cost

    def make_app(self) -> SteppedApp:
        return self.template.make_app(self.app_seed)

    @property
    def queue_wait(self) -> float | None:
        if self.start_time is None:
            return None
        return self.start_time - self.submit_time

    @property
    def duration(self) -> float | None:
        if self.start_time is None or self.end_time is None:
            return None
        return self.end_time - self.start_time

    def describe(self) -> str:
        return (f"job {self.job_id} [{self.tenant}/{self.template.name}] "
                f"{self.nodes}n x {self.nsteps} steps "
                f"(~{self.walltime_estimate:.1f}s est) -> {self.state.value}")


# ---------------------------------------------------------------------------
# Young/Daly-informed estimates
# ---------------------------------------------------------------------------


def combined_fatal_mtbf(mtbf_by_kind: dict | None) -> float:
    """Aggregate MTBF of the job-killing fault kinds.

    Independent failure processes compose harmonically (rates add):
    ``1/M = sum(1/M_k)`` over the fatal kinds.  ``inf`` with faults off.
    """
    from repro.resilience.faults import FATAL_KINDS, FaultKind

    if not mtbf_by_kind:
        return math.inf
    rate = 0.0
    for kind, m in mtbf_by_kind.items():
        if FaultKind(kind) in FATAL_KINDS and math.isfinite(m):
            if m <= 0:
                raise JobError(f"MTBF for {kind!r} must be positive")
            rate += 1.0 / m
    return 1.0 / rate if rate > 0 else math.inf


def checkpoint_interval_steps(est_step_cost: float, checkpoint_cost: float,
                              mtbf: float, *, nsteps: int) -> int:
    """The Young/Daly interval ``W* = sqrt(2 delta M)``, in whole steps.

    Clamped to ``[1, nsteps]``: an infinite MTBF still checkpoints once
    at the end (the runner always writes checkpoint 0 and the final one).
    """
    if est_step_cost <= 0:
        raise JobError("est_step_cost must be positive")
    if not math.isfinite(mtbf):
        return nsteps
    w_star = young_daly_interval(checkpoint_cost, mtbf)
    return max(1, min(nsteps, round(w_star / est_step_cost)))


def walltime_estimate(nsteps: int, est_step_cost: float,
                      checkpoint_cost: float, mtbf: float, *,
                      restart_cost: float = 0.0,
                      safety: float = 1.5) -> float:
    """User-facing walltime request: work x (1 + Daly overhead) x safety.

    The overhead term is the first-order expected overhead fraction at
    the optimal interval (:func:`~repro.resilience.daly.predicted_overhead`);
    ``safety`` makes the estimate an upper bound in the common case, which
    is what EASY backfill's no-delay guarantee is conditioned on.
    """
    if safety < 1.0:
        raise JobError("safety factor must be >= 1 (estimates are bounds)")
    work = nsteps * est_step_cost
    if not math.isfinite(mtbf):
        return work * safety
    interval = min(young_daly_interval(checkpoint_cost, mtbf), work)
    overhead = predicted_overhead(interval, checkpoint_cost, mtbf,
                                  restart_cost=restart_cost)
    return work * (1.0 + overhead) * safety
