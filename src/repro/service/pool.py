"""Simulated machine pools: the nodes the scheduler packs jobs onto.

A :class:`MachinePool` is a slice of a catalog machine
(:mod:`repro.hardware.catalog`) the service owns: ``nodes`` fungible
compute nodes plus a :class:`SparePool` of warm spares.  Nodes are
counted, not named — the fabric cost models only care how many ranks a
job's communicator spans, so allocation is pure arithmetic and the whole
pool stays deterministic.

The spare pool is the contention point the ISSUE calls out: elastic
recovery (:class:`~repro.resilience.runner.SpareSwapPolicy` with
``pool=``) and the scheduler's borrow-for-the-head-job path draw from
the *same* :class:`SparePool`, and every acquire/deny/release is
appended to an ordered audit log — two runs of the same seeded workload
produce byte-identical logs, which is how the determinism tests pin the
contention's resolution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.catalog import machine_by_name
from repro.hardware.machine import MachineSpec


class PoolError(RuntimeError):
    """Invalid pool operation: over-allocation, over-release, bad sizes."""


@dataclass(frozen=True)
class SpareEvent:
    """One entry in the spare pool's audit log."""

    time: float
    purpose: str  # "recovery" | "scheduler" | ...
    action: str  # "acquire" | "deny" | "release"
    available_after: int


class SparePool:
    """A counted pool of warm spare nodes with an ordered audit log.

    Implements the :class:`~repro.resilience.runner.SpareNodeSource`
    protocol, so a recovery policy can draw from it directly.  ``now`` is
    the service's simulated clock, advanced by the engine before any
    event is processed — callers inside a job execution (recovery) stamp
    their entries with the job's start time, which is when the service
    commits the job's resources (allocation-time reservation semantics;
    documented, deterministic, and asserted by the contention tests).
    """

    def __init__(self, nspares: int) -> None:
        if nspares < 0:
            raise PoolError("spare pool size must be non-negative")
        self.total = int(nspares)
        self.available = int(nspares)
        self.now = 0.0
        self.log: list[SpareEvent] = []
        self.denials = 0

    def try_acquire(self, purpose: str) -> bool:
        if self.available > 0:
            self.available -= 1
            self.log.append(SpareEvent(self.now, purpose, "acquire",
                                       self.available))
            return True
        self.denials += 1
        self.log.append(SpareEvent(self.now, purpose, "deny", self.available))
        return False

    def acquire_many(self, n: int, purpose: str) -> int:
        """Acquire up to *n* spares; returns how many were granted."""
        granted = 0
        for _ in range(int(n)):
            if not self.try_acquire(purpose):
                break
            granted += 1
        return granted

    def release(self, n: int = 1, purpose: str = "release") -> None:
        if n < 0:
            raise PoolError("cannot release a negative number of spares")
        if self.available + n > self.total:
            raise PoolError(
                f"releasing {n} spares would exceed the pool "
                f"({self.available}/{self.total} available)"
            )
        self.available += n
        self.log.append(SpareEvent(self.now, purpose, "release",
                                   self.available))

    def audit(self) -> tuple[tuple[float, str, str, int], ...]:
        """The log as plain tuples — the determinism tests' comparand."""
        return tuple((e.time, e.purpose, e.action, e.available_after)
                     for e in self.log)


class MachinePool:
    """``nodes`` fungible compute nodes of one catalog machine + spares."""

    def __init__(self, machine: MachineSpec, *, nodes: int | None = None,
                 spares: int = 0) -> None:
        self.machine = machine
        self.nodes = int(nodes) if nodes is not None else machine.nodes
        if self.nodes < 1:
            raise PoolError("pool needs at least one node")
        if self.nodes + spares > machine.nodes:
            raise PoolError(
                f"{self.nodes} nodes + {spares} spares exceeds "
                f"{machine.name}'s {machine.nodes} nodes"
            )
        self.free_nodes = self.nodes
        self.spares = SparePool(spares)

    def allocate(self, n: int) -> None:
        if n < 1:
            raise PoolError("allocation must be at least one node")
        if n > self.free_nodes:
            raise PoolError(
                f"cannot allocate {n} nodes ({self.free_nodes} free)")
        self.free_nodes -= n

    def release(self, n: int) -> None:
        if n < 0:
            raise PoolError("cannot release a negative number of nodes")
        if self.free_nodes + n > self.nodes:
            raise PoolError(
                f"releasing {n} nodes would exceed the pool "
                f"({self.free_nodes}/{self.nodes} free)"
            )
        self.free_nodes += n

    @property
    def busy_nodes(self) -> int:
        return self.nodes - self.free_nodes

    def describe(self) -> str:
        return (f"{self.machine.name} pool: {self.nodes} nodes "
                f"({self.free_nodes} free) + "
                f"{self.spares.available}/{self.spares.total} spares")


def build_pool(machine: str | MachineSpec, *, nodes: int | None = None,
               spares: int = 0) -> MachinePool:
    """A pool from a catalog machine name or an explicit spec."""
    spec = machine_by_name(machine) if isinstance(machine, str) else machine
    return MachinePool(spec, nodes=nodes, spares=spares)
