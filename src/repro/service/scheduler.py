"""FIFO-with-priority + EASY backfill over a counted node pool.

The scheduling discipline is EASY backfill (Lifka 1995), the algorithm
behind most production batch systems and the natural fit for Balsam-style
campaign packing:

1. order the queue by fair-share-adjusted effective priority
   (:class:`~repro.service.fairshare.FairShareLedger`);
2. start jobs from the head while they fit in the free nodes;
3. when the head no longer fits, give it a **reservation**: the earliest
   time enough nodes free up, computed from the running jobs' walltime
   *estimates*;
4. **backfill** lower-priority jobs around the reservation — a job may
   jump the queue only if it fits in the currently free nodes AND either
   finishes (by its estimate) before the reservation, or fits in the
   "shadow" nodes that remain free even after the head starts.

Rule 4 is the EASY guarantee the hypothesis suite pins: *backfill never
delays the head-of-queue reservation*, provided estimates are upper
bounds (which the Young/Daly safety factor makes the common case).

Optionally the scheduler can borrow from the machine's **spare pool**
for a head job that has waited past ``borrow_after`` — the same pool
elastic recovery's spare-swap draws from, so scheduling pressure and
failure recovery contend for the same physical nodes, resolved in
deterministic event order through the pool's audit log.

:meth:`EasyBackfillScheduler.plan` is a pure function of its inputs
(queue, free nodes, running set, clock, spares) returning a
:class:`SchedulerPlan`; the engine applies it, and the property tests
probe it directly with synthetic states.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.service.fairshare import FairShareLedger
from repro.service.job import Job


@dataclass(frozen=True)
class RunningView:
    """What the planner knows about one running job: how many *pool*
    nodes it holds (borrowed spares return to the spare pool, not the
    free pool) and when its estimate says they come back."""

    nodes: int
    est_end: float


@dataclass(frozen=True)
class ScheduledStart:
    """One job the plan starts now."""

    job: Job
    kind: str  # "head" | "backfill" | "spare-borrow"
    borrowed_spares: int = 0


@dataclass(frozen=True)
class Reservation:
    """The head job's promise: it starts no later than ``start_at``."""

    job_id: int
    start_at: float
    shadow_free: int  # nodes still free at start_at once the head runs


@dataclass(frozen=True)
class SchedulerPlan:
    starts: tuple[ScheduledStart, ...]
    reservation: Reservation | None


class EasyBackfillScheduler:
    """Priority + EASY backfill planner over counted, fungible nodes."""

    def __init__(self, fairshare: FairShareLedger | None = None, *,
                 borrow_after: float | None = None) -> None:
        self.fairshare = fairshare or FairShareLedger()
        if borrow_after is not None and borrow_after < 0:
            raise ValueError("borrow_after must be non-negative")
        self.borrow_after = borrow_after

    # -- the planning step ---------------------------------------------------

    def plan(self, queue: Sequence[Job], free_nodes: int,
             running: Sequence[RunningView], now: float, *,
             spare_available: int = 0) -> SchedulerPlan:
        order = sorted(queue, key=lambda j: self.fairshare.order_key(j, now))
        free = int(free_nodes)
        spares = int(spare_available)
        starts: list[ScheduledStart] = []
        live = list(running)

        # 1+2: start from the head while it fits (borrowing spares for a
        # head that has waited past the borrow threshold)
        i = 0
        while i < len(order):
            head = order[i]
            if head.nodes <= free:
                starts.append(ScheduledStart(head, "head"))
                free -= head.nodes
                live.append(RunningView(head.nodes,
                                        now + head.walltime_estimate))
            elif (self.borrow_after is not None
                  and now - head.submit_time >= self.borrow_after
                  and 0 < head.nodes - free <= spares):
                borrowed = head.nodes - free
                spares -= borrowed
                starts.append(ScheduledStart(head, "spare-borrow",
                                             borrowed_spares=borrowed))
                live.append(RunningView(head.nodes - borrowed,
                                        now + head.walltime_estimate))
                free = 0
            else:
                break
            i += 1

        if i >= len(order):
            return SchedulerPlan(tuple(starts), None)

        # 3: reserve for the blocked head — walk the estimated completions
        # until enough pool nodes have come back
        head = order[i]
        reservation = self._reserve(head, free, live, now)

        # 4: backfill the rest around the reservation
        shadow_free = reservation.shadow_free
        for job in order[i + 1:]:
            if job.nodes > free:
                continue
            if now + job.walltime_estimate <= reservation.start_at:
                # done (by its estimate) before the head needs the nodes
                starts.append(ScheduledStart(job, "backfill"))
                free -= job.nodes
            elif job.nodes <= shadow_free:
                # runs past the reservation, but only on nodes the head
                # leaves free anyway
                starts.append(ScheduledStart(job, "backfill"))
                free -= job.nodes
                shadow_free -= job.nodes
        return SchedulerPlan(tuple(starts), reservation)

    @staticmethod
    def _reserve(head: Job, free: int, live: Sequence[RunningView],
                 now: float) -> Reservation:
        avail = free
        t_reserve = now
        for view in sorted(live, key=lambda v: (v.est_end, -v.nodes)):
            if avail >= head.nodes:
                break
            avail += view.nodes
            t_reserve = view.est_end
        if avail < head.nodes:
            raise ValueError(
                f"job {head.job_id} requests {head.nodes} nodes but the "
                f"pool can never free more than {avail} (validate node "
                f"requests against the pool at submit time)"
            )
        return Reservation(job_id=head.job_id, start_at=max(t_reserve, now),
                           shadow_free=avail - head.nodes)
