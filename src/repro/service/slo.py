"""Service-level objectives: throughput, queue-wait percentiles, shares.

The service's SLOs, computed from the engine's completed-job ledger on
the *simulated* clock:

* **sustained jobs/sec** — completions over the campaign makespan;
* **queue-wait latency** — p50/p99 exact percentiles over the retained
  per-job waits (the fixed-bucket histogram in the metrics registry is
  the scrape-side estimate; the SLO report keeps the raw sample);
* **machine utilization** — busy node-seconds over pool capacity
  x makespan;
* **per-tenant shares** — completions and node-seconds per tenant, the
  fair-share layer's report card.

Everything here is arithmetic over recorded values — no clocks, no
randomness — and renders through the same table writer as every other
report in the reproduction.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.report import render_table
from repro.service.job import Job, JobState
from repro.service.pool import MachinePool

#: Fixed queue-wait histogram bucket edges (simulated seconds); module
#: scope so every run bins identically.
QUEUE_WAIT_EDGES = (0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1000.0)


@dataclass(frozen=True)
class TenantShare:
    """One tenant's slice of the campaign."""

    tenant: str
    submitted: int
    completed: int
    node_seconds: float
    share: float  # fraction of all delivered node-seconds


@dataclass(frozen=True)
class SloReport:
    """The service's measured objectives for one campaign."""

    njobs: int
    completed: int
    failed: int
    requeues: int
    makespan: float
    jobs_per_sec: float
    p50_queue_wait: float
    p99_queue_wait: float
    mean_queue_wait: float
    max_queue_wait: float
    utilization: float
    backfill_fraction: float
    tenants: tuple[TenantShare, ...]

    def render(self) -> str:
        rows = [
            ("jobs completed / submitted",
             f"{self.completed} / {self.njobs} ({self.failed} failed, "
             f"{self.requeues} requeues)"),
            ("makespan (simulated)", f"{self.makespan:.1f} s"),
            ("sustained throughput", f"{self.jobs_per_sec:.3f} jobs/s"),
            ("queue wait p50 / p99",
             f"{self.p50_queue_wait:.2f} s / {self.p99_queue_wait:.2f} s"),
            ("queue wait mean / max",
             f"{self.mean_queue_wait:.2f} s / {self.max_queue_wait:.2f} s"),
            ("machine utilization", f"{self.utilization:.1%}"),
            ("backfilled starts", f"{self.backfill_fraction:.1%}"),
        ]
        head = render_table(("SLO", "measured"), rows, title="Service SLOs")
        tenant_rows = [
            (t.tenant, str(t.submitted), str(t.completed),
             f"{t.node_seconds:.1f}", f"{t.share:.1%}")
            for t in self.tenants
        ]
        shares = render_table(
            ("Tenant", "Submitted", "Completed", "Node-seconds", "Share"),
            tenant_rows, title="Per-tenant fair-share ledger",
        )
        return head + "\n" + shares


def exact_percentile(values, q: float) -> float:
    """Exact linear-interpolated percentile of a retained sample."""
    arr = np.asarray(list(values), dtype=float)
    if arr.size == 0:
        return 0.0
    return float(np.percentile(arr, q))


def compute_slo(jobs: list[Job], pool: MachinePool, *,
                requeues: int = 0) -> SloReport:
    """Fold a finished campaign's job ledger into its SLO report."""
    completed = [j for j in jobs if j.state is JobState.COMPLETED]
    failed = [j for j in jobs if j.state is JobState.FAILED]
    waits = [j.queue_wait for j in completed]
    first_submit = min((j.submit_time for j in jobs), default=0.0)
    last_end = max((j.end_time for j in completed if j.end_time is not None),
                   default=first_submit)
    makespan = max(last_end - first_submit, 0.0)
    busy = sum(j.nodes * j.duration for j in completed)
    backfilled = sum(1 for j in completed if j.start_kind == "backfill")

    per_tenant: dict[str, list] = {}
    for j in jobs:
        agg = per_tenant.setdefault(j.tenant, [0, 0, 0.0])
        agg[0] += 1
        if j.state is JobState.COMPLETED:
            agg[1] += 1
            agg[2] += j.nodes * j.duration
    total_ns = sum(v[2] for v in per_tenant.values()) or 1.0
    tenants = tuple(
        TenantShare(tenant=t, submitted=v[0], completed=v[1],
                    node_seconds=v[2], share=v[2] / total_ns)
        for t, v in sorted(per_tenant.items())
    )
    return SloReport(
        njobs=len(jobs),
        completed=len(completed),
        failed=len(failed),
        requeues=requeues,
        makespan=makespan,
        jobs_per_sec=len(completed) / makespan if makespan > 0 else 0.0,
        p50_queue_wait=exact_percentile(waits, 50.0),
        p99_queue_wait=exact_percentile(waits, 99.0),
        mean_queue_wait=float(np.mean(waits)) if waits else 0.0,
        max_queue_wait=float(np.max(waits)) if waits else 0.0,
        utilization=(busy / (pool.nodes * makespan)
                     if makespan > 0 else 0.0),
        backfill_fraction=(backfilled / len(completed) if completed else 0.0),
        tenants=tenants,
    )
