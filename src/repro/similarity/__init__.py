"""CoMet substrate: CCC similarity metrics via mixed-precision GEMM."""

from repro.similarity.ccc import (
    N_STATES,
    ccc_from_counts,
    ccc_gemm_flops,
    ccc_kernel_spec,
    ccc_similarity,
    cooccurrence_counts_bruteforce,
    cooccurrence_counts_gemm,
    one_hot,
    random_allele_data,
)

__all__ = [
    "threeway_similarity",
    "threeway_metric",
    "threeway_kernel_spec",
    "threeway_gemm_flops",
    "threeway_counts_gemm",
    "threeway_counts_bruteforce",
    "N_STATES",
    "ccc_from_counts",
    "ccc_gemm_flops",
    "ccc_kernel_spec",
    "ccc_similarity",
    "cooccurrence_counts_bruteforce",
    "cooccurrence_counts_gemm",
    "one_hot",
    "random_allele_data",
]
from repro.similarity.threeway import (
    threeway_counts_bruteforce,
    threeway_counts_gemm,
    threeway_gemm_flops,
    threeway_kernel_spec,
    threeway_metric,
    threeway_similarity,
)
