"""CoMet substrate: CCC similarity metrics via mixed-precision GEMM.

The tally engine lives in :mod:`repro.similarity.gemmtally` (bit-packed
popcount word sweeps + batched einsum/matmul contractions); the 2-way and
3-way CCC metrics in :mod:`~repro.similarity.ccc` and
:mod:`~repro.similarity.threeway` run on it by default, with the naive
Python tally loops kept as the ``use_gemm_tally=False`` ablation.
"""

from repro.similarity.ccc import (
    N_STATES,
    ccc_from_counts,
    ccc_gemm_flops,
    ccc_kernel_spec,
    ccc_similarity,
    cooccurrence_counts,
    cooccurrence_counts_bruteforce,
    cooccurrence_counts_gemm,
    one_hot,
    random_allele_data,
)
from repro.similarity.gemmtally import (
    PackedAlleles,
    einsum_tallies_2way,
    einsum_tallies_3way,
    gemm_tally_kernel_spec,
    gemmtally_kernel_specs,
    pack_alleles,
    pack_kernel_spec,
    popcount_tallies_2way,
    popcount_tallies_3way,
    tally_2way,
    tally_3way,
)
from repro.similarity.threeway import (
    threeway_counts,
    threeway_counts_bruteforce,
    threeway_counts_gemm,
    threeway_gemm_flops,
    threeway_kernel_spec,
    threeway_metric,
    threeway_similarity,
)

__all__ = [
    "N_STATES",
    "PackedAlleles",
    "ccc_from_counts",
    "ccc_gemm_flops",
    "ccc_kernel_spec",
    "ccc_similarity",
    "cooccurrence_counts",
    "cooccurrence_counts_bruteforce",
    "cooccurrence_counts_gemm",
    "einsum_tallies_2way",
    "einsum_tallies_3way",
    "gemm_tally_kernel_spec",
    "gemmtally_kernel_specs",
    "one_hot",
    "pack_alleles",
    "pack_kernel_spec",
    "popcount_tallies_2way",
    "popcount_tallies_3way",
    "random_allele_data",
    "tally_2way",
    "tally_3way",
    "threeway_counts",
    "threeway_counts_bruteforce",
    "threeway_counts_gemm",
    "threeway_gemm_flops",
    "threeway_kernel_spec",
    "threeway_metric",
    "threeway_similarity",
]
