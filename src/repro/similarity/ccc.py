"""CoMet's Custom Correlation Coefficient via GEMM (§3.6).

CoMet finds similarity between data vectors — e.g. genomics samples over
two-bit allele states.  The 2-way CCC between vectors u, v counts the
co-occurrence of allele states and normalizes; the crucial implementation
fact is that *all* pairwise co-occurrence counts over a dataset reduce to
one matrix product of one-hot-encoded data:

    N[s, t][i, j] = Σ_k  1[u_i(k) = s] · 1[v_j(k) = t]

which is "overwhelmingly dominated by the mixed precision GEMM matrix
product operation".  Counts fit in small integers, so FP16/Int8 tensor
cores compute them exactly — the reduced-precision trick of the paper.

The GEMM path is verified element-for-element against a brute-force pair
loop, including through a simulated FP16 quantization of the one-hot
operands (lossless, since one-hot entries are 0/1 and counts stay far
below the FP16 integer-exactness bound of 2048 for the sizes used).
"""

from __future__ import annotations


import numpy as np

from repro.gpu.kernel import KernelSpec
from repro.hardware.gpu import Precision

#: Number of allele states in 2-bit genomics encoding.
N_STATES = 2


def random_allele_data(n_vectors: int, n_fields: int, *, seed: int = 0) -> np.ndarray:
    """Binary allele matrix: (n_vectors, n_fields) of {0, 1}."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, N_STATES, size=(n_vectors, n_fields), dtype=np.int8)


def one_hot(data: np.ndarray) -> np.ndarray:
    """One-hot encode to shape (n_vectors, N_STATES, n_fields)."""
    n, m = data.shape
    out = np.zeros((n, N_STATES, m), dtype=np.float64)
    for s in range(N_STATES):
        out[:, s, :] = data == s
    return out


def cooccurrence_counts_gemm(data: np.ndarray, *, fp16: bool = False,
                             int8: bool = False) -> np.ndarray:
    """All-pairs co-occurrence counts via GEMM.

    Returns counts of shape (N_STATES, N_STATES, n, n):
    ``counts[s, t, i, j]`` = #fields where vector i is in state s and
    vector j in state t.  With ``fp16`` the one-hot operands are cast
    through float16 first (the mixed-precision path), exact for 0/1
    operands and counts below 2¹¹.  With ``int8`` the operands go through
    int8 with int32 accumulation (the CoMet Int8 path, §3.6) — exact for
    any count below 2³¹.
    """
    if fp16 and int8:
        raise ValueError("choose one of fp16 / int8")
    oh = one_hot(data)
    if fp16:
        oh = oh.astype(np.float16).astype(np.float64)
    if int8:
        oh8 = oh.astype(np.int8)
        n = data.shape[0]
        counts = np.empty((N_STATES, N_STATES, n, n))
        for s in range(N_STATES):
            for t in range(N_STATES):
                counts[s, t] = (
                    oh8[:, s, :].astype(np.int32) @ oh8[:, t, :].T.astype(np.int32)
                ).astype(np.float64)
        return counts
    n = data.shape[0]
    counts = np.empty((N_STATES, N_STATES, n, n))
    for s in range(N_STATES):
        for t in range(N_STATES):
            counts[s, t] = oh[:, s, :] @ oh[:, t, :].T  # the GEMM
    return counts


def cooccurrence_counts_bruteforce(data: np.ndarray) -> np.ndarray:
    """Reference pair-loop implementation."""
    n, m = data.shape
    counts = np.zeros((N_STATES, N_STATES, n, n))
    for i in range(n):
        for j in range(n):
            for k in range(m):
                counts[data[i, k], data[j, k], i, j] += 1
    return counts


def ccc_from_counts(counts: np.ndarray, n_fields: int) -> np.ndarray:
    """2-way CCC matrix from co-occurrence counts.

    The CoMet 2-way metric for each (i, j) and state pair (s, t):
    ``f_st · (1 − f_s·)·(1 − f_·t)`` with f the normalized frequencies;
    we report the maximum over state pairs, a scalar similarity in [0, 1].
    """
    f_st = counts / n_fields  # (S, S, n, n)
    f_s = f_st.sum(axis=1)  # (S, n, n): marginal of i's state
    f_t = f_st.sum(axis=0)  # (S, n, n): marginal of j's state
    metric = f_st * (1.0 - f_s[:, None]) * (1.0 - f_t[None, :])
    return metric.max(axis=(0, 1))


def ccc_similarity(data: np.ndarray, *, fp16: bool = True) -> np.ndarray:
    """End-to-end 2-way CCC over all vector pairs."""
    counts = cooccurrence_counts_gemm(data, fp16=fp16)
    return ccc_from_counts(counts, data.shape[1])


# ---------------------------------------------------------------------------
# Performance layer
# ---------------------------------------------------------------------------


def ccc_gemm_flops(n_vectors: int, n_fields: int) -> float:
    """FLOPs of the count GEMMs: N_STATES² products of (n×m)·(m×n)."""
    return N_STATES**2 * 2.0 * float(n_vectors) ** 2 * n_fields


def ccc_kernel_spec(n_vectors: int, n_fields: int, *,
                    efficiency: float = 0.7) -> KernelSpec:
    """The mixed-precision count GEMM as one kernel launch.

    CoMet's co-designed rocBLAS routines reached a high fraction of the
    FP16 matrix peak; counts accumulate in FP32 (mixed FP16/FP32).
    """
    itemsize = 2  # FP16 operands
    return KernelSpec(
        name=f"ccc_gemm_{n_vectors}x{n_fields}",
        flops=ccc_gemm_flops(n_vectors, n_fields) / efficiency,
        bytes_read=float(2 * N_STATES * n_vectors * n_fields * itemsize),
        bytes_written=float(N_STATES**2 * n_vectors * n_vectors * 4),
        threads=max(n_vectors * n_vectors, 64),
        precision=Precision.FP16,
        uses_matrix_engine=True,
        registers_per_thread=128,
        lds_per_workgroup=16 * 1024,  # double-buffered FP16 panels stay small
        workgroup_size=256,
    )
