"""CoMet's Custom Correlation Coefficient via GEMM (§3.6).

CoMet finds similarity between data vectors — e.g. genomics samples over
two-bit allele states.  The 2-way CCC between vectors u, v counts the
co-occurrence of allele states and normalizes; the crucial implementation
fact is that *all* pairwise co-occurrence counts over a dataset reduce to
one matrix product of one-hot-encoded data:

    N[s, t][i, j] = Σ_k  1[u_i(k) = s] · 1[v_j(k) = t]

which is "overwhelmingly dominated by the mixed precision GEMM matrix
product operation".  Counts fit in small integers, so FP16/Int8 tensor
cores compute them exactly — the reduced-precision trick of the paper.

The tallies themselves now come from :mod:`repro.similarity.gemmtally`
(bit-packed popcount word sweeps, or one batched matmul over the one-hot
state planes); the naive pair loop survives as the
``use_gemm_tally=False`` ablation and as the exactness reference.  Fields
holding values outside ``[0, N_STATES)`` are treated as missing and are
excluded from every tally, on both paths.
"""

from __future__ import annotations


import numpy as np

from repro.gpu.kernel import KernelSpec
from repro.hardware.gpu import Precision
from repro.similarity import gemmtally

#: Number of allele states in 2-bit genomics encoding.
N_STATES = 2


def random_allele_data(n_vectors: int, n_fields: int, *, seed: int = 0) -> np.ndarray:
    """Binary allele matrix: (n_vectors, n_fields) of {0, 1}."""
    rng = np.random.default_rng(seed)
    return rng.integers(0, N_STATES, size=(n_vectors, n_fields), dtype=np.int8)


def one_hot(data: np.ndarray) -> np.ndarray:
    """One-hot encode to shape (n_vectors, N_STATES, n_fields)."""
    n, m = data.shape
    out = np.zeros((n, N_STATES, m), dtype=np.float64)
    for s in range(N_STATES):
        out[:, s, :] = data == s
    return out


def cooccurrence_counts_gemm(data: np.ndarray, *, fp16: bool = False,
                             int8: bool = False) -> np.ndarray:
    """All-pairs co-occurrence counts via one batched GEMM contraction.

    Returns counts of shape (N_STATES, N_STATES, n, n):
    ``counts[s, t, i, j]`` = #fields where vector i is in state s and
    vector j in state t.  With ``fp16`` the one-hot operands are cast
    through float16 first (the mixed-precision path), exact for 0/1
    operands and counts below 2¹¹.  With ``int8`` the operands go through
    int8 with int32 accumulation (the CoMet Int8 path, §3.6) — exact for
    any count below 2³¹.
    """
    if fp16 and int8:
        raise ValueError("choose one of fp16 / int8")
    if int8:
        p = gemmtally._state_planes(data, N_STATES, np.int8).astype(np.int32)
        acc = p[:, None] @ p.transpose(0, 2, 1)[None]  # (S, S, n, n) int32
        return acc.astype(np.float64)
    dtype = np.float16 if fp16 else np.float64
    p = gemmtally._state_planes(data, N_STATES, dtype).astype(np.float64)
    return p[:, None] @ p.transpose(0, 2, 1)[None]  # the batched GEMM


def cooccurrence_counts_bruteforce(data: np.ndarray) -> np.ndarray:
    """Reference pair-loop implementation (the naive-tally ablation)."""
    n, m = data.shape
    counts = np.zeros((N_STATES, N_STATES, n, n))
    for i in range(n):
        for j in range(n):
            for k in range(m):
                s, t = data[i, k], data[j, k]
                if 0 <= s < N_STATES and 0 <= t < N_STATES:
                    counts[s, t, i, j] += 1
    return counts


def cooccurrence_counts(data: np.ndarray, *, use_gemm_tally: bool = True,
                        method: str = "popcount") -> np.ndarray:
    """All-pairs tallies: the GEMM-recast engine, or the naive pair loop.

    The default runs :func:`repro.similarity.gemmtally.tally_2way`
    (``method`` selects bit-packed popcount sweeps or the batched einsum
    contraction); ``use_gemm_tally=False`` is the O(n²·m) Python-loop
    ablation used to measure the recast's speedup.
    """
    if use_gemm_tally:
        return gemmtally.tally_2way(data, n_states=N_STATES, method=method)
    return cooccurrence_counts_bruteforce(data)


def ccc_from_counts(counts: np.ndarray, n_fields: int) -> np.ndarray:
    """2-way CCC matrix from co-occurrence counts.

    The CoMet 2-way metric for each (i, j) and state pair (s, t):
    ``f_st · (1 − f_s·)·(1 − f_·t)`` with f the normalized frequencies;
    we report the maximum over state pairs, a scalar similarity in [0, 1].
    """
    f_st = counts / n_fields  # (S, S, n, n)
    f_s = f_st.sum(axis=1)  # (S, n, n): marginal of i's state
    f_t = f_st.sum(axis=0)  # (S, n, n): marginal of j's state
    metric = f_st * (1.0 - f_s[:, None]) * (1.0 - f_t[None, :])
    return metric.max(axis=(0, 1))


def ccc_similarity(data: np.ndarray, *, fp16: bool = True,
                   use_gemm_tally: bool = True,
                   method: str = "popcount") -> np.ndarray:
    """End-to-end 2-way CCC over all vector pairs.

    ``use_gemm_tally`` selects the bit-packed/batched-GEMM tally engine
    (default) or the naive loop ablation; ``fp16`` is honoured on the
    legacy einsum path and is a no-op for the integer-exact popcount path.
    """
    if use_gemm_tally:
        counts = cooccurrence_counts(data, method=method)
    else:
        counts = cooccurrence_counts_bruteforce(data)
    return ccc_from_counts(counts, data.shape[1])


# ---------------------------------------------------------------------------
# Performance layer
# ---------------------------------------------------------------------------


def ccc_gemm_flops(n_vectors: int, n_fields: int) -> float:
    """FLOPs of the count GEMMs: N_STATES² products of (n×m)·(m×n)."""
    return N_STATES**2 * 2.0 * float(n_vectors) ** 2 * n_fields


def ccc_kernel_spec(n_vectors: int, n_fields: int, *,
                    efficiency: float = 0.7) -> KernelSpec:
    """The mixed-precision count GEMM as one kernel launch.

    CoMet's co-designed rocBLAS routines reached a high fraction of the
    FP16 matrix peak; counts accumulate in FP32 (mixed FP16/FP32).
    """
    itemsize = 2  # FP16 operands
    return KernelSpec(
        name=f"ccc_gemm_{n_vectors}x{n_fields}",
        flops=ccc_gemm_flops(n_vectors, n_fields) / efficiency,
        bytes_read=float(2 * N_STATES * n_vectors * n_fields * itemsize),
        bytes_written=float(N_STATES**2 * n_vectors * n_vectors * 4),
        threads=max(n_vectors * n_vectors, 64),
        precision=Precision.FP16,
        uses_matrix_engine=True,
        registers_per_thread=128,
        lds_per_workgroup=16 * 1024,  # double-buffered FP16 panels stay small
        workgroup_size=256,
    )
