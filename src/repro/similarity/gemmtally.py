"""GEMM-recast CCC/DUO tally engine: bit-packed popcounts + batched GEMMs.

CoMet's 6.71 EF number (§3.6) rests on one algorithmic move: the
comparative-genomics tallies — "how many fields have vector i in allele
state s while vector j is in state t" — are *contractions over the field
axis*, so all O(n²) vector pairs reduce to a handful of matrix products
of the per-state indicator planes.  This module implements both machine
formulations of that move:

* **bit-packed popcount sweeps** (the DUO/CCC "2-bit GEMM"): each state's
  indicator row is packed 64 fields per ``uint64`` word; the (s, t) tally
  matrix is ``popcount(A_s[i] & A_t[j])`` summed over words.  Integer
  exact by construction, with a 64× data compression over one-hot bytes.
* **batched einsum/matmul contractions** (the FP16/Int8 tensor-core GEMM):
  the (S, n, m) one-hot stack contracts in ONE batched matmul to the full
  (S, S, n, n) tally tensor — one fused contraction per state pair, never
  a Python loop over vector pairs.

The 3-way CCC tallies factor the same way: for each state triple
(s, t, u) the count tensor is ``Σ_m A_s[i,m]·A_t[j,m]·A_u[k,m]``, computed
as one (n²×m)·(m×n) GEMM on the Hadamard pair plane (the masked-GEMM
batching CoMet uses to map 3-way metrics onto matrix engines) or as a
three-operand popcount sweep on the packed words.

Fields whose value falls outside ``[0, n_states)`` are treated as missing
(CoMet's sparse-input handling): they belong to no state plane and are
excluded from every tally.

Everything here returns *integer* tallies and is verified exactly against
the naive loops in :mod:`repro.similarity.ccc` / ``threeway``.

Because the tallies are integers, the Huang–Abraham checksums here are
*zero tolerance*: the row/column marginals of each (s, t) count matrix
are recomputed independently through O(n·m) GEMVs (1/n of the tally GEMM
cost), any discrepancy is corruption by definition, and a single flipped
tally is located and corrected exactly (``tally_2way(..., abft=True)``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.backend import ArrayBackend, resolve_backend
from repro.backend.numpy_backend import popcount_words as _popcount
from repro.gpu.kernel import KernelSpec
from repro.hardware.gpu import Precision
from repro.observability.tracer import NULL_TRACER, Tracer
from repro.resilience.abft import AbftReport, ChecksummedGemm, verify_gemm

#: Fields packed per machine word in the popcount path.
WORD_BITS = 64


@dataclass(frozen=True)
class PackedAlleles:
    """Bit-plane encoding of an allele matrix.

    ``words[i, s, w]`` holds fields ``64w .. 64w+63`` of vector i's state-s
    indicator, little-endian within each word.  Padding bits beyond
    ``n_fields`` are zero, so AND/popcount sweeps never overcount.
    """

    words: np.ndarray  # (n_vectors, n_states, n_words) uint64
    n_fields: int

    @property
    def n_vectors(self) -> int:
        return self.words.shape[0]

    @property
    def n_states(self) -> int:
        return self.words.shape[1]

    @property
    def n_words(self) -> int:
        return self.words.shape[2]


def pack_alleles(data: np.ndarray, *, n_states: int = 2) -> PackedAlleles:
    """Pack an (n, m) allele matrix into per-state uint64 bit planes."""
    data = np.asarray(data)
    if data.ndim != 2:
        raise ValueError(f"allele matrix must be 2-D, got shape {data.shape}")
    n, m = data.shape
    planes = data[:, None, :] == np.arange(n_states)[None, :, None]  # (n, S, m)
    packed8 = np.packbits(planes, axis=-1, bitorder="little")  # (n, S, ceil(m/8))
    pad = (-packed8.shape[-1]) % 8
    if pad:
        packed8 = np.pad(packed8, [(0, 0), (0, 0), (0, pad)])
    words = packed8.view(np.uint64)
    return PackedAlleles(words=np.ascontiguousarray(words), n_fields=m)


def popcount_tallies_2way(packed: PackedAlleles, *,
                          backend: "str | ArrayBackend | None" = None
                          ) -> np.ndarray:
    """All-pairs 2-way tallies by popcount-on-AND word sweeps.

    Returns int64 ``counts[s, t, i, j]`` = #fields with vector i in state s
    and vector j in state t.  Dispatched to the array backend's fused
    kernel: one broadcast sweep over the (n·S)-row word planes covers
    *every* state pair at once (word-block chunked), instead of S²
    separate AND/popcount temporaries.  Integer exact on every backend.
    """
    return resolve_backend(backend).popcount_tallies_2way(packed.words)


def popcount_tallies_3way(packed: PackedAlleles, *,
                          backend: "str | ArrayBackend | None" = None
                          ) -> np.ndarray:
    """All-triples 3-way tallies by three-operand popcount sweeps.

    Returns int64 ``counts[s, t, u, i, j, k]``.  Backend-dispatched; the
    reference kernel reuses the ``A_s[i] & A_t[j]`` pair plane across the
    pivot axis, so each state triple costs one (n, n, n, W) AND+popcount
    sweep.
    """
    return resolve_backend(backend).popcount_tallies_3way(packed.words)


def _state_planes(data: np.ndarray, n_states: int, dtype) -> np.ndarray:
    """One-hot stack (S, n, m) in the GEMM operand dtype."""
    planes = (data[None, :, :] == np.arange(n_states)[:, None, None])
    return planes.astype(dtype)


def einsum_tallies_2way(data: np.ndarray, *, n_states: int = 2,
                        dtype=np.float64) -> np.ndarray:
    """All-pairs 2-way tallies as ONE batched matmul contraction.

    The (S, n, m) one-hot stack contracts as
    ``counts[s, t] = P[s] @ P[t].T`` — a single (S·S)-batch GEMM, the
    formulation that runs on the matrix engines.  FP16/FP32 operands give
    exact integer results for tallies below the mantissa bound (2¹¹ for
    FP16), mirroring the paper's mixed-precision claim.  The operands are
    quantized through ``dtype`` and accumulated in FP64 (simulating the
    FP32 accumulators of the real mixed-precision GEMM).
    """
    p = _state_planes(data, n_states, dtype).astype(np.float64)
    acc = p[:, None] @ p.transpose(0, 2, 1)[None]  # (S, S, n, n) batched GEMM
    return np.rint(np.asarray(acc, dtype=np.float64)).astype(np.int64)


def einsum_tallies_3way(data: np.ndarray, *, n_states: int = 2,
                        dtype=np.float64) -> np.ndarray:
    """All-triples 3-way tallies, one fused GEMM per state triple.

    For each (s, t, u) the count tensor ``Σ_m P_s[i,m] P_t[j,m] P_u[k,m]``
    is evaluated as the (n²×m)·(m×n) product of the Hadamard pair plane
    against the pivot plane — einsum's optimal contraction path, and the
    masked-GEMM batching CoMet uses for the 3-way metric.  No loop over
    vectors, only over the S³ state triples.
    """
    p = _state_planes(data, n_states, dtype).astype(np.float64)
    S, n, m = p.shape
    counts = np.empty((S,) * 3 + (n,) * 3, dtype=np.int64)
    for s in range(S):
        for t in range(S):
            pair = (p[s, :, None, :] * p[t, None, :, :]).reshape(n * n, m)
            for u in range(S):
                acc = pair @ p[u].T  # the fused (n² x m)·(m x n) GEMM
                counts[s, t, u] = np.rint(
                    np.asarray(acc, dtype=np.float64)
                ).astype(np.int64).reshape(n, n, n)
    return counts


def tally_marginal_checksums(data: np.ndarray, *, n_states: int = 2
                             ) -> tuple[np.ndarray, np.ndarray]:
    """Independent row/column marginals of the 2-way tally tensor.

    ``row[s, t, i] = Σ_j counts[s, t, i, j] = P_s[i, :] · c_t`` where
    ``c_t[m] = Σ_j P_t[j, m]`` is the per-field occupancy of state t —
    one GEMV per state pair, O(S²·n·m) next to the O(S²·n²·m) tally GEMM
    (the 1/n Huang–Abraham overhead).  Computed in int64, so the
    checksums are exact and any mismatch against the tallies is
    corruption by definition.
    """
    p = _state_planes(data, n_states, np.int64)      # (S, n, m)
    occupancy = p.sum(axis=1)                        # (S, m)
    row = np.einsum("snm,tm->stn", p, occupancy)     # Σ_j counts[s,t,i,j]
    col = np.einsum("sm,tnm->stn", occupancy, p)     # Σ_i counts[s,t,i,j]
    return row, col


def verify_tallies(counts: np.ndarray, row_checksum: np.ndarray,
                   col_checksum: np.ndarray, *, correct: bool = True,
                   raise_on_detect: bool = True) -> AbftReport:
    """Zero-tolerance checksum audit of a 2-way tally tensor.

    Each (s, t) count matrix is checked against its independent marginals;
    a single corrupted tally breaks exactly one row and one column sum
    with matching discrepancies and is subtracted back out in place.
    Returns the aggregate report; raises
    :class:`~repro.resilience.abft.SdcDetected` on anything uncorrectable.
    """
    S = counts.shape[0]
    n = counts.shape[2]
    zeros = np.zeros(n)
    total = AbftReport()
    for s in range(S):
        for t in range(S):
            g = ChecksummedGemm(
                C=counts[s, t], row_checksum=row_checksum[s, t],
                col_checksum=col_checksum[s, t],
                row_tol=zeros, col_tol=zeros,
            )
            sub = verify_gemm(g, correct=correct,
                              raise_on_detect=raise_on_detect)
            total.checked += sub.checked
            total.detected += sub.detected
            total.corrected += sub.corrected
            total.locations += tuple((s, t) + loc for loc in sub.locations)
    return total


def tally_2way(data: np.ndarray, *, n_states: int = 2,
               method: str = "popcount", abft: bool = False,
               tracer: Tracer | None = None,
               backend: "str | ArrayBackend | None" = None) -> np.ndarray:
    """2-way tallies through the GEMM-recast engine.

    ``method='popcount'`` runs the bit-packed word sweeps (the DUO 2-bit
    path, dispatched to *backend*); ``'einsum'`` the batched one-hot
    matmul (the FP16 tensor-core path, simulated in FP64); both are
    integer exact.  ``abft=True`` additionally audits the result against
    independently-computed marginal checksums (exact, zero tolerance)
    before returning it.  ``tracer`` records the pack/count/verify phases
    as ordinal spans; the tallies themselves are unaffected.
    """
    tr = tracer if tracer is not None else NULL_TRACER
    be = resolve_backend(backend)
    with tr.span("similarity.tally_2way", cat="similarity", pid="similarity",
                 tid="tally", method=method, n=int(np.asarray(data).shape[0]),
                 backend=be.name):
        if method == "popcount":
            with tr.span("similarity.pack", cat="similarity",
                         pid="similarity", tid="tally"):
                packed = pack_alleles(data, n_states=n_states)
            with tr.span("similarity.count_popcount", cat="similarity",
                         pid="similarity", tid="tally"):
                counts = popcount_tallies_2way(packed, backend=be)
        elif method == "einsum":
            with tr.span("similarity.count_gemm", cat="similarity",
                         pid="similarity", tid="tally"):
                counts = einsum_tallies_2way(data, n_states=n_states)
        else:
            raise ValueError(f"unknown tally method {method!r}")
        if abft:
            with tr.span("similarity.abft_verify", cat="similarity",
                         pid="similarity", tid="tally"):
                row, col = tally_marginal_checksums(data, n_states=n_states)
                verify_tallies(counts, row, col)
    tr.metrics.counter("similarity.tallies_2way").inc()
    return counts


def tally_3way(data: np.ndarray, *, n_states: int = 2,
               method: str = "popcount",
               tracer: Tracer | None = None,
               backend: "str | ArrayBackend | None" = None) -> np.ndarray:
    """3-way tallies through the GEMM-recast engine."""
    tr = tracer if tracer is not None else NULL_TRACER
    be = resolve_backend(backend)
    with tr.span("similarity.tally_3way", cat="similarity", pid="similarity",
                 tid="tally", method=method, n=int(np.asarray(data).shape[0]),
                 backend=be.name):
        if method == "popcount":
            with tr.span("similarity.pack", cat="similarity",
                         pid="similarity", tid="tally"):
                packed = pack_alleles(data, n_states=n_states)
            with tr.span("similarity.count_popcount", cat="similarity",
                         pid="similarity", tid="tally"):
                counts = popcount_tallies_3way(packed, backend=be)
        elif method == "einsum":
            with tr.span("similarity.count_gemm", cat="similarity",
                         pid="similarity", tid="tally"):
                counts = einsum_tallies_3way(data, n_states=n_states)
        else:
            raise ValueError(f"unknown tally method {method!r}")
    tr.metrics.counter("similarity.tallies_3way").inc()
    return counts


# ---------------------------------------------------------------------------
# Performance layer: the tally pipeline as GPU kernel launches
# ---------------------------------------------------------------------------


def pack_kernel_spec(n_vectors: int, n_fields: int, *,
                     n_states: int = 2) -> KernelSpec:
    """The bit-pack stage as one bandwidth-bound kernel.

    Reads the 2-bit allele stream (one byte per field here), writes the
    packed bit planes — a 64× compression, which is why the stage
    disappears next to the count GEMM.
    """
    words = -(-n_fields // WORD_BITS)
    return KernelSpec(
        name=f"ccc_pack_{n_vectors}x{n_fields}",
        flops=float(n_vectors) * n_fields * n_states,  # compare+mask per plane
        bytes_read=float(n_vectors) * n_fields,
        bytes_written=float(n_vectors) * n_states * words * 8,
        threads=max(n_vectors * words, 64),
        # integer compare/mask work rides the FP32 vector ALUs in the
        # perf model (every catalog device defines an FP32 peak)
        precision=Precision.FP32,
        registers_per_thread=32,
        workgroup_size=256,
    )


def gemm_tally_kernel_spec(n_vectors: int, n_fields: int, *,
                           n_states: int = 2, abft: bool = False,
                           efficiency: float = 0.7) -> KernelSpec:
    """The batched count GEMM over packed operands as one launch.

    FLOP count is the dense equivalent (2·n²·m per state pair) so the
    mixed-precision throughput story lines up with §3.6; operands are the
    bit-packed planes (n_fields/8 bytes per vector per state), the tallies
    accumulate in FP32.

    ``abft=True`` adds the Huang–Abraham marginal checksums: two GEMVs
    per state pair plus the marginal comparison sweep — O(1/n) of the
    tally GEMM, the canonical ABFT overhead ratio.
    """
    words = -(-n_fields // WORD_BITS)
    flops = n_states**2 * 2.0 * float(n_vectors) ** 2 * n_fields
    abft_written = 0.0
    if abft:
        # checksum GEMVs (2·2nm per state pair) + tally marginal sums
        # (2n² per state pair) + the comparisons
        flops += n_states**2 * (4.0 * n_vectors * n_fields
                                + 2.0 * float(n_vectors) ** 2)
        abft_written = float(n_states**2 * 2 * n_vectors * 8)
    return KernelSpec(
        name=f"ccc_tally_gemm_{n_vectors}x{n_fields}"
        + ("_abft" if abft else ""),
        flops=flops / efficiency,
        bytes_read=float(2 * n_states * n_vectors * words * 8),
        bytes_written=float(n_states**2 * n_vectors * n_vectors * 4)
        + abft_written,
        threads=max(n_vectors * n_vectors, 64),
        precision=Precision.FP16,
        uses_matrix_engine=True,
        registers_per_thread=128,
        lds_per_workgroup=16 * 1024,
        workgroup_size=256,
    )


def gemmtally_kernel_specs(n_vectors: int, n_fields: int, *,
                           n_states: int = 2,
                           efficiency: float = 0.7) -> list[KernelSpec]:
    """The full tally pipeline (pack, then batched count GEMM)."""
    return [
        pack_kernel_spec(n_vectors, n_fields, n_states=n_states),
        gemm_tally_kernel_spec(n_vectors, n_fields, n_states=n_states,
                               efficiency=efficiency),
    ]
