"""3-way CCC: CoMet's higher-order comparative-genomics method.

CoMet's distinguishing capability beyond 2-way similarity is the 3-way
CCC, which scores *triples* of vectors by the joint frequency of allele
state combinations — epistasis-style interactions no pairwise metric can
see.  The counts reduce to a sequence of GEMMs against element-wise
masked operands (for each state s of the pivot vector, count co-occurrence
of the other two restricted to the fields where the pivot is in state s).

Everything verified against a brute-force triple loop; the FP16 path is
exact for the same reason as the 2-way metric.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.kernel import KernelSpec
from repro.hardware.gpu import Precision
from repro.similarity.ccc import N_STATES, one_hot


def threeway_counts_bruteforce(data: np.ndarray) -> np.ndarray:
    """counts[s, t, u, i, j, k] over vector triples (i < j < k not enforced)."""
    n, m = data.shape
    counts = np.zeros((N_STATES,) * 3 + (n,) * 3)
    for i in range(n):
        for j in range(n):
            for k in range(n):
                for f in range(m):
                    counts[data[i, f], data[j, f], data[k, f], i, j, k] += 1
    return counts


def threeway_counts_gemm(data: np.ndarray, *, fp16: bool = False) -> np.ndarray:
    """3-way counts via masked GEMMs.

    For each pivot vector k and pivot state u, mask the one-hot operands
    to the fields where vector k is in state u, then take the 2-way count
    GEMM — each (k, u) is one batch of GEMMs, which is exactly how CoMet
    maps the 3-way metric onto the matrix engines.
    """
    oh = one_hot(data)
    if fp16:
        oh = oh.astype(np.float16).astype(np.float64)
    n, m = data.shape
    counts = np.empty((N_STATES,) * 3 + (n,) * 3)
    for k in range(n):
        for u in range(N_STATES):
            mask = oh[k, u, :]  # (m,)
            for s in range(N_STATES):
                a = oh[:, s, :] * mask  # masked operand
                for t in range(N_STATES):
                    counts[s, t, u, :, :, k] = a @ oh[:, t, :].T
    return counts


def threeway_metric(counts: np.ndarray, n_fields: int) -> np.ndarray:
    """Scalar 3-way similarity per triple: max over state combinations of
    joint frequency x marginal deviations (the 2-way form lifted)."""
    f = counts / n_fields  # (S,S,S,n,n,n)
    f_i = f.sum(axis=(1, 2))  # (S, n, n, n) marginals
    f_j = f.sum(axis=(0, 2))
    f_k = f.sum(axis=(0, 1))
    metric = (
        f
        * (1.0 - f_i[:, None, None])
        * (1.0 - f_j[None, :, None])
        * (1.0 - f_k[None, None, :])
    )
    return metric.max(axis=(0, 1, 2))


def threeway_similarity(data: np.ndarray, *, fp16: bool = True) -> np.ndarray:
    counts = threeway_counts_gemm(data, fp16=fp16)
    return threeway_metric(counts, data.shape[1])


def threeway_gemm_flops(n_vectors: int, n_fields: int) -> float:
    """FLOPs: per (pivot, pivot-state): S² GEMMs of 2·n²·m, plus masking."""
    gemms = n_vectors * N_STATES * N_STATES**2 * 2.0 * float(n_vectors) ** 2 * n_fields
    masking = n_vectors * N_STATES * N_STATES * float(n_vectors) * n_fields
    return gemms + masking


def threeway_kernel_spec(n_vectors: int, n_fields: int, *,
                         efficiency: float = 0.45) -> KernelSpec:
    """The 3-way pass as one aggregate launch (mixed FP16/FP32)."""
    itemsize = 2
    return KernelSpec(
        name=f"ccc3_{n_vectors}x{n_fields}",
        flops=threeway_gemm_flops(n_vectors, n_fields) / efficiency,
        bytes_read=float(n_vectors * N_STATES * n_vectors * n_fields * itemsize),
        bytes_written=float(N_STATES**3 * n_vectors**3 * 4),
        threads=max(n_vectors**2, 64),
        precision=Precision.FP16,
        uses_matrix_engine=True,
        registers_per_thread=128,
        lds_per_workgroup=16 * 1024,
        workgroup_size=256,
    )
