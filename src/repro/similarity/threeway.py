"""3-way CCC: CoMet's higher-order comparative-genomics method.

CoMet's distinguishing capability beyond 2-way similarity is the 3-way
CCC, which scores *triples* of vectors by the joint frequency of allele
state combinations — epistasis-style interactions no pairwise metric can
see.  The counts reduce to one fused (n²×m)·(m×n) GEMM per state triple
(the Hadamard pair plane contracted against the pivot plane), or to
three-operand popcount sweeps on the bit-packed planes — both provided by
:mod:`repro.similarity.gemmtally`, which is exactly how CoMet maps the
3-way metric onto the matrix engines.

Everything verified against a brute-force triple loop (kept as the
``use_gemm_tally=False`` ablation); the FP16 path is exact for the same
reason as the 2-way metric.
"""

from __future__ import annotations

import numpy as np

from repro.gpu.kernel import KernelSpec
from repro.hardware.gpu import Precision
from repro.similarity import gemmtally
from repro.similarity.ccc import N_STATES


def threeway_counts_bruteforce(data: np.ndarray) -> np.ndarray:
    """counts[s, t, u, i, j, k] over vector triples (i < j < k not enforced).

    The naive-tally ablation; fields outside [0, N_STATES) are missing.
    """
    n, m = data.shape
    counts = np.zeros((N_STATES,) * 3 + (n,) * 3)
    for i in range(n):
        for j in range(n):
            for k in range(n):
                for f in range(m):
                    s, t, u = data[i, f], data[j, f], data[k, f]
                    if (0 <= s < N_STATES and 0 <= t < N_STATES
                            and 0 <= u < N_STATES):
                        counts[s, t, u, i, j, k] += 1
    return counts


def threeway_counts_gemm(data: np.ndarray, *, fp16: bool = False) -> np.ndarray:
    """3-way counts via the fused per-state-triple GEMMs.

    One (n²×m)·(m×n) contraction per (s, t, u) state triple — the batch
    axis is the S³ state combinations, never the vector triples.  ``fp16``
    quantizes the one-hot operands through float16 first (lossless for
    0/1 entries, the paper's mixed-precision claim).
    """
    dtype = np.float16 if fp16 else np.float64
    return gemmtally.einsum_tallies_3way(data, n_states=N_STATES, dtype=dtype)


def threeway_counts(data: np.ndarray, *, use_gemm_tally: bool = True,
                    method: str = "popcount") -> np.ndarray:
    """All-triples tallies: the GEMM-recast engine or the naive loop."""
    if use_gemm_tally:
        return gemmtally.tally_3way(data, n_states=N_STATES, method=method)
    return threeway_counts_bruteforce(data)


def threeway_metric(counts: np.ndarray, n_fields: int) -> np.ndarray:
    """Scalar 3-way similarity per triple: max over state combinations of
    joint frequency x marginal deviations (the 2-way form lifted)."""
    f = counts / n_fields  # (S,S,S,n,n,n)
    f_i = f.sum(axis=(1, 2))  # (S, n, n, n) marginals
    f_j = f.sum(axis=(0, 2))
    f_k = f.sum(axis=(0, 1))
    metric = (
        f
        * (1.0 - f_i[:, None, None])
        * (1.0 - f_j[None, :, None])
        * (1.0 - f_k[None, None, :])
    )
    return metric.max(axis=(0, 1, 2))


def threeway_similarity(data: np.ndarray, *, fp16: bool = True,
                        use_gemm_tally: bool = True,
                        method: str = "popcount") -> np.ndarray:
    if use_gemm_tally:
        counts = threeway_counts(data, method=method)
    else:
        counts = threeway_counts_bruteforce(data)
    return threeway_metric(counts, data.shape[1])


def threeway_gemm_flops(n_vectors: int, n_fields: int) -> float:
    """FLOPs: per state triple one (n²×m)·(m×n) GEMM, plus the Hadamard
    pair-plane products."""
    gemms = N_STATES**3 * 2.0 * float(n_vectors) ** 3 * n_fields
    hadamard = N_STATES**2 * float(n_vectors) ** 2 * n_fields
    return gemms + hadamard


def threeway_kernel_spec(n_vectors: int, n_fields: int, *,
                         efficiency: float = 0.45) -> KernelSpec:
    """The 3-way pass as one aggregate launch (mixed FP16/FP32)."""
    itemsize = 2
    return KernelSpec(
        name=f"ccc3_{n_vectors}x{n_fields}",
        flops=threeway_gemm_flops(n_vectors, n_fields) / efficiency,
        bytes_read=float(n_vectors * N_STATES * n_vectors * n_fields * itemsize),
        bytes_written=float(N_STATES**3 * n_vectors**3 * 4),
        threads=max(n_vectors**2, 64),
        precision=Precision.FP16,
        uses_matrix_engine=True,
        registers_per_thread=128,
        lds_per_workgroup=16 * 1024,
        workgroup_size=256,
    )
