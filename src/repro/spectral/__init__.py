"""GESTS substrate: distributed 3-D FFTs and pseudo-spectral DNS."""

from repro.spectral.fft3d import PencilFFT3D, SlabFFT3D, TransposeStats
from repro.spectral.psdns import (
    FFTS_PER_STEP,
    PsdnsStepTime,
    PseudoSpectralNS,
    psdns_step_time,
)

__all__ = [
    "total_kinetic_energy",
    "taylor_microscale_reynolds",
    "enstrophy",
    "energy_spectrum",
    "dissipation_rate",
    "r2c_traffic_saving",
    "SlabRFFT3D",
    "FFTS_PER_STEP",
    "PencilFFT3D",
    "PsdnsStepTime",
    "PseudoSpectralNS",
    "SlabFFT3D",
    "TransposeStats",
    "psdns_step_time",
]
from repro.spectral.rfft3d import SlabRFFT3D, r2c_traffic_saving
from repro.spectral.diagnostics import (
    dissipation_rate,
    energy_spectrum,
    enstrophy,
    taylor_microscale_reynolds,
    total_kinetic_energy,
)
