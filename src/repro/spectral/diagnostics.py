"""Turbulence diagnostics: energy spectra and dissipation (GESTS science).

The scientific output of a DNS campaign: the shell-averaged kinetic-energy
spectrum E(k), total energy and enstrophy, and the viscous dissipation
rate.  Parseval consistency (∑ₖ E(k) equals the physical-space kinetic
energy) is the correctness anchor.
"""

from __future__ import annotations

import numpy as np

from repro.spectral.psdns import PseudoSpectralNS


def energy_spectrum(ns: PseudoSpectralNS) -> tuple[np.ndarray, np.ndarray]:
    """Shell-averaged kinetic-energy spectrum.

    Returns ``(k, E)`` with k = 0..n/2; Σ E(k) equals the mean kinetic
    energy ½⟨|u|²⟩ (Parseval, with numpy's unnormalized FFT convention).
    """
    n = ns.n
    # energy density per mode: |û|²/(2 N⁶) summed over components
    mode_energy = 0.5 * np.sum(np.abs(ns.uh) ** 2, axis=0) / float(n) ** 6
    k_mag = np.sqrt(ns.k2)
    shells = np.arange(0, n // 2 + 1)
    spectrum = np.zeros(len(shells))
    shell_idx = np.clip(np.round(k_mag).astype(int), 0, n // 2)
    np.add.at(spectrum, shell_idx.ravel(), mode_energy.ravel())
    return shells.astype(float), spectrum


def total_kinetic_energy(ns: PseudoSpectralNS) -> float:
    """½⟨|u|²⟩ computed spectrally."""
    _, spec = energy_spectrum(ns)
    return float(spec.sum())


def enstrophy(ns: PseudoSpectralNS) -> float:
    """½⟨|ω|²⟩ from the spectral vorticity."""
    n = ns.n
    om = np.empty_like(ns.uh)
    om[0] = 1j * (ns.ky * ns.uh[2] - ns.kz * ns.uh[1])
    om[1] = 1j * (ns.kz * ns.uh[0] - ns.kx * ns.uh[2])
    om[2] = 1j * (ns.kx * ns.uh[1] - ns.ky * ns.uh[0])
    return float(0.5 * np.sum(np.abs(om) ** 2) / float(n) ** 6)


def dissipation_rate(ns: PseudoSpectralNS) -> float:
    """ε = 2ν · enstrophy (incompressible identity)."""
    return 2.0 * ns.nu * enstrophy(ns)


def taylor_microscale_reynolds(ns: PseudoSpectralNS) -> float:
    """Re_λ = u' λ / ν with λ² = 15 ν u'²/ε (isotropic relations).

    The headline parameter of DNS campaigns ("probe high Reynolds number
    conditions").  Returns 0 for quiescent fields.
    """
    e = total_kinetic_energy(ns)
    eps = dissipation_rate(ns)
    if e <= 0 or eps <= 0 or ns.nu <= 0:
        return 0.0
    u_rms = np.sqrt(2.0 * e / 3.0)
    lam = np.sqrt(15.0 * ns.nu * u_rms**2 / eps)
    return float(u_rms * lam / ns.nu)
