"""Distributed 3-D FFTs: *Slabs* (1-D) and *Pencils* (2-D) decompositions.

This is the custom-built 3-D FFT at the heart of GESTS (§3.3).  The data
movement is performed for real — per-rank local arrays, explicit
block exchanges implementing the global transposes — and verified against
``numpy.fft.fftn``.  Communication is priced per transpose with the
alltoall cost model, so the paper's slab-vs-pencil trade (one fewer
communication cycle vs. an N² rank ceiling) is measurable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hardware.interconnect import InterconnectSpec
from repro.mpisim import costmodel as cm
from repro.mpisim.costmodel import LinkParameters, link_parameters, ranks_per_nic
from repro.mpisim.decomposition import PencilDecomposition, SlabDecomposition


@dataclass
class TransposeStats:
    """Communication record of one distributed FFT execution."""

    transposes: int = 0
    comm_time: float = 0.0
    bytes_per_rank: float = 0.0


class SlabFFT3D:
    """1-D (slab) decomposed complex 3-D FFT over P simulated ranks."""

    def __init__(self, n: int, nranks: int, *, fabric: InterconnectSpec,
                 ranks_per_node: int = 8) -> None:
        self.decomp = SlabDecomposition(n=n, nranks=nranks)
        self.n = n
        self.nranks = nranks
        self.fabric = fabric
        self.ranks_per_node = ranks_per_node
        self.stats = TransposeStats()

    def _link(self) -> LinkParameters:
        share = ranks_per_nic(min(self.ranks_per_node, self.nranks), self.fabric)
        return link_parameters(self.fabric, ranks_sharing_nic=share, device_buffers=True)

    def _charge_transpose(self) -> None:
        ln = self.n // self.nranks
        bytes_per_pair = float(ln * ln * self.n * 16)
        t = cm.alltoall_time(self.nranks, bytes_per_pair, self._link())
        self.stats.transposes += 1
        self.stats.comm_time += t
        self.stats.bytes_per_rank += bytes_per_pair * (self.nranks - 1)

    def scatter(self, x: np.ndarray) -> list[np.ndarray]:
        """Split a full (n, n, n) array into per-rank slabs."""
        self._check_input(x)
        ln = self.n // self.nranks
        return [x[r * ln : (r + 1) * ln].astype(complex) for r in range(self.nranks)]

    def forward(self, slabs: list[np.ndarray]) -> list[np.ndarray]:
        """Forward FFT; returns locals distributed over axis 1.

        Local FFTs along axes 1,2, one global transpose, local FFT along
        axis 0 — the single communication cycle of the slab algorithm.
        """
        ln = self.n // self.nranks
        staged = [np.fft.fft(np.fft.fft(s, axis=1), axis=2) for s in slabs]
        # global transpose: rank r sends its axis-1 chunk c to rank c
        blocks = [[s[:, c * ln : (c + 1) * ln, :] for c in range(self.nranks)]
                  for s in staged]
        self._charge_transpose()
        received = [
            np.concatenate([blocks[r][c] for r in range(self.nranks)], axis=0)
            for c in range(self.nranks)
        ]
        return [np.fft.fft(z, axis=0) for z in received]

    def inverse(self, spectra: list[np.ndarray]) -> list[np.ndarray]:
        """Inverse transform back to the original slab layout."""
        ln = self.n // self.nranks
        staged = [np.fft.ifft(z, axis=0) for z in spectra]
        blocks = [[z[r * ln : (r + 1) * ln, :, :] for r in range(self.nranks)]
                  for z in staged]
        self._charge_transpose()
        received = [
            np.concatenate([blocks[c][r] for c in range(self.nranks)], axis=1)
            for r in range(self.nranks)
        ]
        return [np.fft.ifft(np.fft.ifft(s, axis=2), axis=1) for s in received]

    def gather_spectrum(self, spectra: list[np.ndarray]) -> np.ndarray:
        """Assemble the axis-1-distributed spectrum into a full array."""
        return np.concatenate(spectra, axis=1)

    def gather_slabs(self, slabs: list[np.ndarray]) -> np.ndarray:
        return np.concatenate(slabs, axis=0)

    def _check_input(self, x: np.ndarray) -> None:
        if x.shape != (self.n, self.n, self.n):
            raise ValueError(f"expected ({self.n},)*3 array, got {x.shape}")


class PencilFFT3D:
    """2-D (pencil) decomposed complex 3-D FFT over a prow×pcol grid."""

    def __init__(self, n: int, prow: int, pcol: int, *, fabric: InterconnectSpec,
                 ranks_per_node: int = 8) -> None:
        self.decomp = PencilDecomposition(n=n, prow=prow, pcol=pcol)
        self.n = n
        self.prow = prow
        self.pcol = pcol
        self.fabric = fabric
        self.ranks_per_node = ranks_per_node
        self.stats = TransposeStats()

    @property
    def nranks(self) -> int:
        return self.prow * self.pcol

    def _charge_transpose(self, group: int, bytes_per_pair: float) -> None:
        share = ranks_per_nic(min(self.ranks_per_node, self.nranks), self.fabric)
        link = link_parameters(self.fabric, ranks_sharing_nic=share, device_buffers=True)
        t = cm.alltoall_time(group, bytes_per_pair, link)
        self.stats.transposes += 1
        self.stats.comm_time += t
        self.stats.bytes_per_rank += bytes_per_pair * (group - 1)

    def scatter(self, x: np.ndarray) -> dict[tuple[int, int], np.ndarray]:
        if x.shape != (self.n, self.n, self.n):
            raise ValueError(f"expected ({self.n},)*3 array, got {x.shape}")
        li, lj = self.n // self.prow, self.n // self.pcol
        return {
            (i, j): x[i * li : (i + 1) * li, j * lj : (j + 1) * lj, :].astype(complex)
            for i in range(self.prow)
            for j in range(self.pcol)
        }

    def forward(self, locals_: dict[tuple[int, int], np.ndarray]) -> dict[tuple[int, int], np.ndarray]:
        """Two communication cycles: axis-2 FFT, row transpose, axis-1 FFT,
        column transpose, axis-0 FFT."""
        n, pr, pc = self.n, self.prow, self.pcol
        li, lj, mz = n // pr, n // pc, n // pc
        mi = n // pr
        # local FFT along axis 2
        stage1 = {key: np.fft.fft(v, axis=2) for key, v in locals_.items()}
        # transpose within each row group (over j): complete axis 1
        self._charge_transpose(pc, float(li * lj * mz * 16))
        stage2: dict[tuple[int, int], np.ndarray] = {}
        for i in range(pr):
            for jp in range(pc):
                parts = [
                    stage1[(i, j)][:, :, jp * mz : (jp + 1) * mz] for j in range(pc)
                ]
                stage2[(i, jp)] = np.fft.fft(np.concatenate(parts, axis=1), axis=1)
        # transpose within each column group (over i): complete axis 0
        self._charge_transpose(pr, float(li * mi * mz * 16))
        out: dict[tuple[int, int], np.ndarray] = {}
        for jp in range(pc):
            for ip in range(pr):
                parts = [
                    stage2[(i, jp)][:, ip * mi : (ip + 1) * mi, :] for i in range(pr)
                ]
                out[(ip, jp)] = np.fft.fft(np.concatenate(parts, axis=0), axis=0)
        return out

    def gather_spectrum(self, spectra: dict[tuple[int, int], np.ndarray]) -> np.ndarray:
        """Assemble the (axis1, axis2)-distributed spectrum."""
        n, pr, pc = self.n, self.prow, self.pcol
        mi, mz = n // pr, n // pc
        full = np.empty((n, n, n), dtype=complex)
        for (i, j), v in spectra.items():
            full[:, i * mi : (i + 1) * mi, j * mz : (j + 1) * mz] = v
        return full
