"""Pseudo-spectral DNS of incompressible turbulence (GESTS, §3.3).

Two layers:

* :class:`PseudoSpectralNS` — a *real* single-array pseudo-spectral
  incompressible Navier–Stokes solver (rotational form, 2/3-rule
  dealiasing, RK2), verified on Taylor–Green decay and divergence-free
  preservation.  This is the numerics GESTS runs, at test scale.
* :func:`psdns_step_time` — the paper-scale performance model: per-step
  cost on a machine from the per-rank FFT kernel work plus the
  decomposition's transpose communication, yielding the GESTS FOM
  ``N³ / t_wall``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.gpu.kernel import KernelSpec
from repro.gpu.perfmodel import time_kernel
from repro.hardware.gpu import Precision
from repro.hardware.machine import MachineSpec
from repro.linalg.fft import fft_flops
from repro.mpisim import costmodel as cm
from repro.mpisim.costmodel import link_parameters, ranks_per_nic
from repro.mpisim.decomposition import PencilDecomposition, SlabDecomposition

#: 3-D FFTs per time step in the rotational-form RK2 stepper: per stage,
#: 3 inverse (velocity), 3 inverse (vorticity), 3 forward (nonlinear term).
FFTS_PER_STEP = 2 * 9


class PseudoSpectralNS:
    """Incompressible NS in a 2π-periodic box, spectral space state."""

    def __init__(self, n: int, *, viscosity: float = 0.01) -> None:
        if n < 4 or n % 2:
            raise ValueError("n must be an even integer >= 4")
        self.n = n
        self.nu = viscosity
        k1 = np.fft.fftfreq(n, d=1.0 / n)
        self.kx, self.ky, self.kz = np.meshgrid(k1, k1, k1, indexing="ij")
        self.k2 = self.kx**2 + self.ky**2 + self.kz**2
        self.k2_safe = np.where(self.k2 == 0, 1.0, self.k2)
        kmax = n // 3  # 2/3 rule
        self.dealias = (
            (np.abs(self.kx) <= kmax)
            & (np.abs(self.ky) <= kmax)
            & (np.abs(self.kz) <= kmax)
        )
        self.uh = np.zeros((3, n, n, n), dtype=complex)

    # -- setup -----------------------------------------------------------------

    def set_taylor_green(self) -> None:
        """Classic Taylor–Green vortex initial condition."""
        n = self.n
        x = np.linspace(0, 2 * np.pi, n, endpoint=False)
        X, Y, Z = np.meshgrid(x, x, x, indexing="ij")
        u = np.cos(X) * np.sin(Y) * np.sin(Z)
        v = -np.sin(X) * np.cos(Y) * np.sin(Z)
        w = np.zeros_like(u)
        for i, f in enumerate((u, v, w)):
            self.uh[i] = np.fft.fftn(f)
        self._project()

    def set_velocity(self, u: np.ndarray, v: np.ndarray, w: np.ndarray) -> None:
        for i, f in enumerate((u, v, w)):
            if f.shape != (self.n,) * 3:
                raise ValueError(f"field shape {f.shape} != {(self.n,)*3}")
            self.uh[i] = np.fft.fftn(f)
        self._project()

    # -- diagnostics ------------------------------------------------------------

    def velocity(self) -> np.ndarray:
        """Physical-space velocity, shape (3, n, n, n)."""
        return np.real(np.fft.ifftn(self.uh, axes=(1, 2, 3)))

    def energy(self) -> float:
        """Mean kinetic energy ⟨|u|²⟩/2."""
        u = self.velocity()
        return float(0.5 * np.mean(np.sum(u**2, axis=0)))

    def max_divergence(self) -> float:
        div = (
            1j * self.kx * self.uh[0]
            + 1j * self.ky * self.uh[1]
            + 1j * self.kz * self.uh[2]
        )
        return float(np.abs(np.fft.ifftn(div)).max())

    # -- dynamics ---------------------------------------------------------------

    def _project(self) -> None:
        """Leray projection onto divergence-free fields."""
        kdotu = (
            self.kx * self.uh[0] + self.ky * self.uh[1] + self.kz * self.uh[2]
        )
        for i, k in enumerate((self.kx, self.ky, self.kz)):
            self.uh[i] -= k * kdotu / self.k2_safe

    def _nonlinear(self, uh: np.ndarray) -> np.ndarray:
        """Rotational-form nonlinear term u × ω, dealiased, projected."""
        u = np.real(np.fft.ifftn(uh, axes=(1, 2, 3)))
        om = np.empty_like(uh)
        om[0] = 1j * (self.ky * uh[2] - self.kz * uh[1])
        om[1] = 1j * (self.kz * uh[0] - self.kx * uh[2])
        om[2] = 1j * (self.kx * uh[1] - self.ky * uh[0])
        w = np.real(np.fft.ifftn(om, axes=(1, 2, 3)))
        cross = np.empty_like(u)
        cross[0] = u[1] * w[2] - u[2] * w[1]
        cross[1] = u[2] * w[0] - u[0] * w[2]
        cross[2] = u[0] * w[1] - u[1] * w[0]
        nh = np.fft.fftn(cross, axes=(1, 2, 3))
        nh *= self.dealias
        kdotn = self.kx * nh[0] + self.ky * nh[1] + self.kz * nh[2]
        for i, k in enumerate((self.kx, self.ky, self.kz)):
            nh[i] -= k * kdotn / self.k2_safe
        return nh

    def step(self, dt: float) -> None:
        """One RK2 (Heun) step with integrating-factor viscosity."""
        if dt <= 0:
            raise ValueError("dt must be positive")
        # integrating-factor Heun: terms decay from their evaluation time
        ef = np.exp(-self.nu * self.k2 * dt)
        n1 = self._nonlinear(self.uh)
        mid = (self.uh + dt * n1) * ef
        n2 = self._nonlinear(mid)
        self.uh = self.uh * ef + 0.5 * dt * (n1 * ef + n2)
        self.uh[:, ~self.dealias] = 0.0
        self._project()


# ---------------------------------------------------------------------------
# Paper-scale performance model
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class PsdnsStepTime:
    """Breakdown of one simulated PSDNS time step."""

    fft_time: float
    transpose_time: float
    pointwise_time: float

    @property
    def total(self) -> float:
        return self.fft_time + self.transpose_time + self.pointwise_time

    def fom(self, n: int) -> float:
        """The GESTS figure of merit: N³ / t_wall."""
        return float(n) ** 3 / self.total


def psdns_device_kernels(n: int, nranks: int, *,
                         fft_efficiency: float = 0.35) -> list[KernelSpec]:
    """One rank's per-step device kernels: local 1-D FFT passes + pointwise.

    The FFT kernel is LDS-resident (the batched 1-D transforms stage
    through shared memory), which is what makes its occupancy — and hence
    its tuning — workgroup-size-sensitive.  The pointwise kernel covers
    the projection and cross products, ~30 flops/point, memory bound.
    """
    itemsize = 16
    local_flops = 3 * fft_flops(n) * n * n / nranks
    local_traffic = 3 * 2 * (n**3 // nranks) * itemsize
    fft = KernelSpec(
        name=f"fft3d_local_{n}",
        flops=local_flops / fft_efficiency,
        bytes_read=float(local_traffic),
        bytes_written=float(local_traffic),
        threads=max(n**3 // (4 * nranks), 64),
        precision=Precision.FP64,
        lds_per_workgroup=32 * 1024,
        workgroup_size=256,
    )
    pointwise = KernelSpec(
        name="psdns_pointwise",
        flops=30.0 * n**3 / nranks,
        bytes_read=float(6 * (n**3 // nranks) * itemsize),
        bytes_written=float(3 * (n**3 // nranks) * itemsize),
        threads=max(n**3 // nranks, 64),
        precision=Precision.FP64,
    )
    return [fft, pointwise]


def psdns_step_time(
    machine: MachineSpec,
    n: int,
    nranks: int,
    *,
    decomposition: str = "slabs",
    ffts_per_step: int = FFTS_PER_STEP,
    fft_efficiency: float = 0.35,
) -> PsdnsStepTime:
    """Per-step wall time of an N³ PSDNS on *machine* with *nranks* ranks.

    One rank per GPU (GESTS binds one MPI rank per GCD).  Per 3-D FFT a
    rank performs its share of the three 1-D FFT passes (device kernel)
    and the decomposition's global transposes (alltoall model).
    """
    node = machine.node
    if not node.has_gpus:
        raise ValueError("psdns_step_time models the GPU production mode")
    assert node.gpu is not None
    if decomposition == "slabs":
        decomp = SlabDecomposition(n=n, nranks=nranks)
        group = nranks
    elif decomposition == "pencils":
        from repro.mpisim.decomposition import balanced_pencil_grid

        prow, pcol = balanced_pencil_grid(n, nranks)
        decomp = PencilDecomposition(n=n, prow=prow, pcol=pcol)
        group = max(prow, pcol)
    else:
        raise ValueError(f"unknown decomposition {decomposition!r}")

    itemsize = 16
    spec, pw = psdns_device_kernels(n, nranks, fft_efficiency=fft_efficiency)
    t_fft_local = time_kernel(spec, node.gpu).total_time

    # transpose: bytes each rank exchanges per global transpose
    fabric = node.interconnect
    assert fabric is not None
    active = min(node.gpus_per_node, nranks)
    link = link_parameters(
        fabric, ranks_sharing_nic=ranks_per_nic(active, fabric), device_buffers=True
    )
    bpp = decomp.transpose_bytes_per_pair(itemsize)
    t_transpose = decomp.transposes_per_fft * cm.alltoall_time(group, bpp, link)

    t_pointwise = time_kernel(pw, node.gpu).total_time

    return PsdnsStepTime(
        fft_time=ffts_per_step * t_fft_local,
        transpose_time=ffts_per_step * t_transpose,
        pointwise_time=t_pointwise,
    )
