"""Real-to-complex distributed 3-D FFT (the PSDNS production transform).

Turbulence fields are real, so production pseudo-spectral codes (GESTS
included) use R2C transforms: the last axis stores only n/2+1 complex
modes, halving both memory and transpose traffic relative to the complex
transform.  Implemented over the same slab machinery as
:class:`repro.spectral.fft3d.SlabFFT3D` and verified against
``numpy.fft.rfftn``.
"""

from __future__ import annotations

import numpy as np

from repro.hardware.interconnect import InterconnectSpec
from repro.mpisim import costmodel as cm
from repro.mpisim.costmodel import link_parameters, ranks_per_nic
from repro.mpisim.decomposition import SlabDecomposition
from repro.spectral.fft3d import TransposeStats


class SlabRFFT3D:
    """Slab-decomposed real-to-complex 3-D FFT over P simulated ranks.

    Forward layout: real input slabs (n/P, n, n) → spectrum distributed
    over axis 1 with shape (n, n/P, n//2+1).
    """

    def __init__(self, n: int, nranks: int, *, fabric: InterconnectSpec,
                 ranks_per_node: int = 8) -> None:
        self.decomp = SlabDecomposition(n=n, nranks=nranks)
        self.n = n
        self.nranks = nranks
        self.fabric = fabric
        self.ranks_per_node = ranks_per_node
        self.stats = TransposeStats()

    @property
    def n_half(self) -> int:
        return self.n // 2 + 1

    def _charge_transpose(self) -> None:
        ln = self.n // self.nranks
        # half-spectrum payload: the R2C saving vs the complex transform
        bytes_per_pair = float(ln * ln * self.n_half * 16)
        share = ranks_per_nic(min(self.ranks_per_node, self.nranks), self.fabric)
        link = link_parameters(self.fabric, ranks_sharing_nic=share,
                               device_buffers=True)
        t = cm.alltoall_time(self.nranks, bytes_per_pair, link)
        self.stats.transposes += 1
        self.stats.comm_time += t
        self.stats.bytes_per_rank += bytes_per_pair * (self.nranks - 1)

    def scatter(self, x: np.ndarray) -> list[np.ndarray]:
        if x.shape != (self.n,) * 3:
            raise ValueError(f"expected ({self.n},)*3 real array, got {x.shape}")
        if np.iscomplexobj(x):
            raise ValueError("R2C input must be real")
        ln = self.n // self.nranks
        return [x[r * ln : (r + 1) * ln].astype(float) for r in range(self.nranks)]

    def forward(self, slabs: list[np.ndarray]) -> list[np.ndarray]:
        """R2C along axis 2, C2C along axis 1, transpose, C2C along axis 0."""
        ln = self.n // self.nranks
        staged = [np.fft.fft(np.fft.rfft(s, axis=2), axis=1) for s in slabs]
        blocks = [[s[:, c * ln : (c + 1) * ln, :] for c in range(self.nranks)]
                  for s in staged]
        self._charge_transpose()
        received = [
            np.concatenate([blocks[r][c] for r in range(self.nranks)], axis=0)
            for c in range(self.nranks)
        ]
        return [np.fft.fft(z, axis=0) for z in received]

    def inverse(self, spectra: list[np.ndarray]) -> list[np.ndarray]:
        ln = self.n // self.nranks
        staged = [np.fft.ifft(z, axis=0) for z in spectra]
        blocks = [[z[r * ln : (r + 1) * ln, :, :] for r in range(self.nranks)]
                  for z in staged]
        self._charge_transpose()
        received = [
            np.concatenate([blocks[c][r] for c in range(self.nranks)], axis=1)
            for r in range(self.nranks)
        ]
        return [np.fft.irfft(np.fft.ifft(s, axis=1), n=self.n, axis=2)
                for s in received]

    def gather_spectrum(self, spectra: list[np.ndarray]) -> np.ndarray:
        return np.concatenate(spectra, axis=1)

    def gather_slabs(self, slabs: list[np.ndarray]) -> np.ndarray:
        return np.concatenate(slabs, axis=0)


def r2c_traffic_saving(n: int) -> float:
    """Transpose-traffic ratio complex/R2C ≈ 2 for large n."""
    return float(n) / (n // 2 + 1)
