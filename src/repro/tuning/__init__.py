"""Seeded autotuning navigator over kernel/checkpoint/collective knobs.

The tuning layer closes the loop the paper's teams closed by hand: given
the machine models (:mod:`repro.hardware`), the kernel timing stack
(:mod:`repro.gpu`), the collective cost models (:mod:`repro.mpisim`) and
the resilience machinery (:mod:`repro.resilience`), search the knob
spaces those layers expose and emit a reproducible report — plus a
ReFrame-style suite of generated regression checks that pin every tuned
result to its measured margin.

Entry points:

* :func:`~repro.tuning.navigator.run_navigator` — one seeded pass over
  all machines, apps and knob domains; returns a
  :class:`~repro.tuning.navigator.TuningReport`.
* :func:`~repro.tuning.checks.generate_checks` — expand a report into
  parameterized :class:`~repro.tuning.checks.GeneratedCheck` objects for
  pytest.
"""

from repro.tuning.checkpoint import (
    DEFAULT_INTERVAL_STEPS,
    INTERVAL_FACTORS,
    TARGET_WSTAR_STEPS,
    CheckpointFidelity,
    CheckpointTuningResult,
    measure_overhead,
    tune_checkpoint_interval,
)
from repro.tuning.checks import DEFAULT_BAND, GeneratedCheck, generate_checks
from repro.tuning.collectives import (
    MESSAGE_SIZES,
    CollectiveTuningResult,
    machine_link,
    machine_ranks,
    select_algorithm,
    tune_collectives,
)
from repro.tuning.kernels import TUNABLE_APPS, AppWorkload, build_workload
from repro.tuning.navigator import (
    KernelTuningResult,
    TuningBudget,
    TuningReport,
    run_navigator,
    tune_app_kernels,
)
from repro.tuning.search import (
    SearchResult,
    grid_search,
    seeded_subset,
    successive_halving,
)
from repro.tuning.space import (
    KernelConfig,
    hot_kernel_index,
    kernel_config_grid,
    sequence_time,
)

__all__ = [
    "DEFAULT_BAND",
    "DEFAULT_INTERVAL_STEPS",
    "INTERVAL_FACTORS",
    "MESSAGE_SIZES",
    "TARGET_WSTAR_STEPS",
    "TUNABLE_APPS",
    "AppWorkload",
    "CheckpointFidelity",
    "CheckpointTuningResult",
    "CollectiveTuningResult",
    "GeneratedCheck",
    "KernelConfig",
    "KernelTuningResult",
    "SearchResult",
    "TuningBudget",
    "TuningReport",
    "build_workload",
    "generate_checks",
    "grid_search",
    "hot_kernel_index",
    "kernel_config_grid",
    "machine_link",
    "machine_ranks",
    "measure_overhead",
    "run_navigator",
    "seeded_subset",
    "select_algorithm",
    "sequence_time",
    "successive_halving",
    "tune_app_kernels",
    "tune_checkpoint_interval",
    "tune_collectives",
]
