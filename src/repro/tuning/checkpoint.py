"""Checkpoint-interval tuning against injected-fault campaigns.

The knob is the Young/Daly question: how many compute steps between
checkpoints on each machine?  The *measured* objective is the overhead
fraction a fault-injected :class:`~repro.apps.exasky.ExaskyCampaign`
actually pays through the :class:`~repro.resilience.runner.ResilientRunner`
on a representative-rank :class:`~repro.mpisim.scaled.ScaledComm` of the
full machine — not the analytic formula, which enters only as a
cross-check (the recorded ``w_star_steps`` and agreement factor).

Because campaigns are stochastic under fault injection, the search is
:func:`~repro.tuning.search.successive_halving` over rising fidelity
(more steps, more seeds): every candidate gets a cheap measurement, the
surviving half a trustworthy one.  Calibration mirrors
:mod:`repro.experiments.resilience_at_scale`: checkpoint cost δ is pinned
to ``CHECKPOINT_STEP_FRACTION`` of a step and the timescale is compressed
so Young/Daly's W* lands near :data:`TARGET_WSTAR_STEPS` steps — cheap but
discriminating.

The untuned baseline is the conservative default of a team that has not
measured anything: checkpoint after every step.  That is what makes the
margin real — the tuner's win is the measured gap between "always safe"
and the interval the fault process actually rewards.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.apps.exasky import ExaskyCampaign
from repro.hardware.machine import MachineSpec
from repro.mpisim.partition import RankGroupPartitioner
from repro.mpisim.scaled import ScaledComm
from repro.resilience.daly import scaled_fault_injector, system_mtbf
from repro.resilience.runner import CheckpointCostModel, ResilientRunner
from repro.resilience.snapshot import encode_snapshot
from repro.tuning.search import successive_halving

#: the compression anchor: steps of compute W* prescribes between
#: checkpoints (same constant as experiments.resilience_at_scale)
TARGET_WSTAR_STEPS = 8
#: checkpoint write cost delta as a fraction of one step's cost
CHECKPOINT_STEP_FRACTION = 0.25
#: scheduler relaunch cost as a fraction of one step's cost
RESTART_STEP_FRACTION = 0.5
#: the untuned baseline: checkpoint after every step
DEFAULT_INTERVAL_STEPS = 1
#: interval candidates as multiples of the W* anchor
INTERVAL_FACTORS: tuple[float, ...] = (0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 4.0)


@dataclass(frozen=True)
class CheckpointFidelity:
    """One successive-halving rung: campaign length x fault seeds."""

    nsteps: int
    seeds: tuple[int, ...]

    def describe(self) -> dict:
        return {"nsteps": self.nsteps, "seeds": list(self.seeds)}


@dataclass(frozen=True)
class CheckpointTuningResult:
    """Tuned checkpoint cadence for one machine."""

    machine: str
    nodes: int
    machine_ranks: int
    default_interval_steps: int
    default_overhead: float
    tuned_interval_steps: int
    tuned_overhead: float
    w_star_steps: float
    campaigns: int  # fault campaigns executed by the search
    fidelity: CheckpointFidelity  # the final (trusted) rung

    @property
    def speedup(self) -> float:
        """Campaign wall-time ratio: default over tuned.

        Overhead fractions convert to wall time as ``1 / (1 - overhead)``
        of the pure compute time.
        """
        return (1.0 - self.tuned_overhead) / (1.0 - self.default_overhead)

    @property
    def daly_agreement_factor(self) -> float:
        best = float(max(self.tuned_interval_steps, 1))
        return max(best / self.w_star_steps, self.w_star_steps / best)


def _campaign_overhead(machine: MachineSpec, *, interval_steps: int,
                       nsteps: int, seed: int, time_compression: float,
                       nparticles: int,
                       cost_model: CheckpointCostModel) -> float:
    app = ExaskyCampaign(nparticles=nparticles, seed=seed)
    ranks = machine.nodes * max(machine.node.gpus_per_node, 1)
    part = RankGroupPartitioner("endpoints").partition(ranks)
    comm = ScaledComm(
        ranks, machine.node.interconnect,
        ranks_per_node=max(machine.node.gpus_per_node, 1),
        device_buffers=machine.node.has_gpus, partition=part,
    )
    injector = scaled_fault_injector(
        np.random.default_rng(seed), machine,
        machine_ranks=comm.machine_ranks,
        time_compression=time_compression,
    )
    runner = ResilientRunner(
        app, checkpoint_interval=interval_steps, injector=injector,
        cost_model=cost_model, comm=comm, policy="restart",
        backoff_base=0.0, max_retries=64,
    )
    return runner.run(nsteps).overhead_fraction


def _calibration(machine: MachineSpec,
                 nparticles: int) -> tuple[float, CheckpointCostModel, float]:
    """``(step_cost, cost_model, time_compression)`` for this machine.

    The cost model is built backwards from the campaign's actual snapshot
    size so a checkpoint write costs exactly ``CHECKPOINT_STEP_FRACTION``
    steps, and the compression maps the machine's real system MTBF onto a
    timescale where W* sits at ``TARGET_WSTAR_STEPS`` steps — preserving
    the 1/N failure composition while campaigns run in seconds.
    """
    probe = ExaskyCampaign(nparticles=nparticles, seed=0)
    dt_step = float(probe.step_cost)
    nbytes = len(encode_snapshot(probe.snapshot()))
    delta = CHECKPOINT_STEP_FRACTION * dt_step
    cost_model = CheckpointCostModel(
        write_bandwidth=nbytes / delta,
        read_bandwidth=nbytes / delta,
        latency=0.0,
        restart_cost=RESTART_STEP_FRACTION * dt_step,
    )
    w_star = TARGET_WSTAR_STEPS * dt_step
    m_eff = w_star * w_star / (2.0 * delta)
    compression = system_mtbf(machine) / m_eff
    return dt_step, cost_model, compression


def tune_checkpoint_interval(
    machine: MachineSpec,
    *,
    rungs: tuple[CheckpointFidelity, ...],
    nparticles: int = 96,
) -> CheckpointTuningResult:
    """Search the interval grid on *machine* by successive halving.

    Everything is derived from the machine spec and the rung schedule:
    same machine + same rungs => identical result, bit for bit.
    """
    dt_step, cost_model, compression = _calibration(machine, nparticles)

    candidates = sorted({
        max(1, round(TARGET_WSTAR_STEPS * f)) for f in INTERVAL_FACTORS
    })

    def objective(interval: int, rung: object) -> float:
        fid: CheckpointFidelity = rung  # type: ignore[assignment]
        overheads = [
            _campaign_overhead(
                machine, interval_steps=interval, nsteps=fid.nsteps,
                seed=seed, time_compression=compression,
                nparticles=nparticles, cost_model=cost_model,
            )
            for seed in fid.seeds
        ]
        return float(np.mean(overheads))

    result, _ = successive_halving(candidates, objective, rungs)
    final = rungs[-1]
    tuned_interval = candidates[result.best_index]
    default_overhead = objective(DEFAULT_INTERVAL_STEPS, final)
    campaigns = result.evaluated * len(final.seeds) + len(final.seeds)
    return CheckpointTuningResult(
        machine=machine.name,
        nodes=machine.nodes,
        machine_ranks=machine.nodes * max(machine.node.gpus_per_node, 1),
        default_interval_steps=DEFAULT_INTERVAL_STEPS,
        default_overhead=default_overhead,
        tuned_interval_steps=tuned_interval,
        tuned_overhead=result.best_value,
        w_star_steps=float(TARGET_WSTAR_STEPS),
        campaigns=campaigns,
        fidelity=final,
    )


def measure_overhead(machine: MachineSpec, interval_steps: int,
                     fidelity: CheckpointFidelity, *,
                     nparticles: int = 96) -> float:
    """Re-measure one interval at one fidelity (what generated checks do).

    Identical calibration path to :func:`tune_checkpoint_interval`, so a
    recorded overhead reproduces exactly from (machine, interval,
    fidelity).
    """
    _, cost_model, compression = _calibration(machine, nparticles)
    overheads = [
        _campaign_overhead(
            machine, interval_steps=interval_steps, nsteps=fidelity.nsteps,
            seed=seed, time_compression=compression, nparticles=nparticles,
            cost_model=cost_model,
        )
        for seed in fidelity.seeds
    ]
    return float(np.mean(overheads))
