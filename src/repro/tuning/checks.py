"""ReFrame-style regression checks generated from a tuning report.

ReFrame's model: a *check* bundles what to run, which system it is valid
on, and a performance reference with an allowed band; a harness expands
checks over parameter spaces and asserts each measurement lands inside
its band.  :func:`generate_checks` does the same from a
:class:`~repro.tuning.navigator.TuningReport` — every tuned
(app, machine, knob-set) cell becomes one :class:`GeneratedCheck` whose
:meth:`~GeneratedCheck.evaluate` *re-derives* the measurement from the
descriptor alone (rebuild the workload, re-apply the knobs, re-time), and
whose :meth:`~GeneratedCheck.assert_ok` asserts two things:

1. **regression band** — the re-derived measurement matches the recorded
   reference within ``band`` (the models are deterministic, so the band
   is tight);
2. **tuning margin** — wherever the navigator claimed an improvement, the
   tuned measurement still beats the recorded default by the recorded
   margin (scaled by the band), so a model change that silently erases a
   tuning win fails the suite.

The test harness (``tests/test_tuning_checks.py``) feeds these to
``pytest.mark.parametrize`` — the generated suite is ordinary pytest.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hardware.catalog import TUNING_MACHINES
from repro.hardware.machine import MachineSpec
from repro.tuning.checkpoint import CheckpointFidelity, measure_overhead
from repro.tuning.collectives import select_algorithm
from repro.tuning.kernels import build_workload
from repro.tuning.navigator import TuningReport
from repro.tuning.space import KernelConfig, sequence_time

#: relative half-width of the regression band.  The timing/fault models
#: are deterministic given the descriptor, so the band only has to absorb
#: float summation-order noise.
DEFAULT_BAND = 1e-9


def _machine_by_name(name: str) -> MachineSpec:
    for machine in TUNING_MACHINES:
        if machine.name == name:
            return machine
    raise KeyError(f"unknown tuning machine {name!r}")


@dataclass(frozen=True)
class GeneratedCheck:
    """One parameterized regression check (ReFrame's check : system row).

    ``descriptor`` is the complete recipe for re-deriving the
    measurement; ``reference`` / ``default_reference`` are the values the
    navigator recorded for the tuned and default configurations.
    """

    name: str
    domain: str  # "kernel" | "checkpoint" | "collective"
    system: str  # machine name (ReFrame's partition)
    descriptor: dict = field(hash=False)
    reference: float
    default_reference: float
    band: float = DEFAULT_BAND

    def evaluate(self) -> float:
        """Re-derive the tuned measurement from the descriptor alone."""
        machine = _machine_by_name(self.system)
        if self.domain == "kernel":
            workload = build_workload(self.descriptor["app"], machine)
            config = KernelConfig.from_dict(self.descriptor["config"])
            return sequence_time(config, list(workload.kernels),
                                 workload.device,
                                 default_async=workload.default_async)
        if self.domain == "checkpoint":
            fidelity = CheckpointFidelity(
                nsteps=self.descriptor["fidelity"]["nsteps"],
                seeds=tuple(self.descriptor["fidelity"]["seeds"]),
            )
            return measure_overhead(
                machine, self.descriptor["interval_steps"], fidelity,
                nparticles=self.descriptor["nparticles"])
        if self.domain == "collective":
            cell = select_algorithm(machine, self.descriptor["op"],
                                    self.descriptor["nbytes"])
            if cell.algorithm != self.descriptor["algorithm"]:
                raise AssertionError(
                    f"{self.name}: selection drifted — expected "
                    f"{self.descriptor['algorithm']!r}, "
                    f"now {cell.algorithm!r}")
            return cell.time
        raise ValueError(f"unknown check domain {self.domain!r}")

    def assert_ok(self) -> float:
        """Run the check; returns the measurement for reporting."""
        measured = self.evaluate()
        lo = self.reference * (1.0 - self.band)
        hi = self.reference * (1.0 + self.band)
        if not lo <= measured <= hi:
            raise AssertionError(
                f"{self.name}: measured {measured!r} outside reference "
                f"band [{lo!r}, {hi!r}]")
        if self.reference < self.default_reference:
            # the navigator claimed a win: the tuned measurement must
            # still beat the default by the recorded margin (band-scaled)
            margin = self.default_reference - self.reference
            ceiling = self.default_reference - margin * (1.0 - self.band)
            if measured > ceiling:
                raise AssertionError(
                    f"{self.name}: tuned measurement {measured!r} no "
                    f"longer beats default {self.default_reference!r} by "
                    f"the recorded margin {margin!r}")
        return measured


def generate_checks(report: TuningReport) -> list[GeneratedCheck]:
    """Expand a report into its parameterized check suite."""
    checks: list[GeneratedCheck] = []
    for r in report.kernel:
        checks.append(GeneratedCheck(
            name=f"kernel_{r.app}_{r.machine.lower()}",
            domain="kernel",
            system=r.machine,
            descriptor={"app": r.app, "config": r.config.describe()},
            reference=r.tuned_time,
            default_reference=r.default_time,
        ))
    for c in report.checkpoint:
        checks.append(GeneratedCheck(
            name=f"checkpoint_{c.machine.lower()}",
            domain="checkpoint",
            system=c.machine,
            descriptor={
                "interval_steps": c.tuned_interval_steps,
                "fidelity": c.fidelity.describe(),
                "nparticles": report.budget.checkpoint_particles,
            },
            reference=c.tuned_overhead,
            default_reference=c.default_overhead,
        ))
    for col in report.collectives:
        checks.append(GeneratedCheck(
            name=(f"collective_{col.op}_{col.nbytes}B_"
                  f"{col.machine.lower()}"),
            domain="collective",
            system=col.machine,
            descriptor={"op": col.op, "nbytes": col.nbytes,
                        "algorithm": col.algorithm},
            reference=col.time,
            default_reference=col.default_time,
        ))
    return checks
