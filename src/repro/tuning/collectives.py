"""Per-machine collective-algorithm selection from the Hockney models.

Production MPIs pick collective algorithms from tuning tables keyed by
communicator size and message size; the navigator rebuilds that table for
each catalog machine from the same α-β cost models every app in the repo
pays (:mod:`repro.mpisim.costmodel`).  The communicator is the full
machine (one rank per GPU, all NICs busy — the GPU-aware shared-NIC link
the halo exchanges use), the candidates are the
:data:`~repro.mpisim.costmodel.COLLECTIVE_ALGORITHMS` registry, and the
baseline is the fixed per-op default an untuned build ships
(:data:`~repro.mpisim.costmodel.DEFAULT_COLLECTIVE_ALGORITHM`).

Selection is a pure argmin over closed-form costs — deterministic by
construction — and ties break toward the default algorithm so a selection
only ever changes when it strictly wins.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.machine import MachineSpec
from repro.mpisim.costmodel import (
    COLLECTIVE_ALGORITHMS,
    DEFAULT_COLLECTIVE_ALGORITHM,
    LinkParameters,
    link_parameters,
    ranks_per_nic,
)

#: message sizes (bytes) the selection table is built at: a scalar
#: allreduce, a halo-sized block, and two bulk payloads
MESSAGE_SIZES: tuple[int, ...] = (8, 65536, 1 << 20, 16 << 20)


@dataclass(frozen=True)
class CollectiveTuningResult:
    """The winning algorithm for one (machine, op, message size) cell."""

    machine: str
    op: str
    nbytes: int
    ranks: int
    default_algorithm: str
    default_time: float
    algorithm: str
    time: float

    @property
    def speedup(self) -> float:
        return self.default_time / self.time if self.time > 0 else 1.0


def machine_link(machine: MachineSpec) -> LinkParameters:
    """The α-β link a full-machine collective pays on *machine*."""
    fabric = machine.node.interconnect
    if fabric is None:
        raise ValueError(f"{machine.name} has no interconnect spec")
    ranks = max(machine.node.gpus_per_node, 1)
    return link_parameters(
        fabric,
        ranks_sharing_nic=ranks_per_nic(ranks, fabric),
        device_buffers=machine.node.has_gpus,
    )


def machine_ranks(machine: MachineSpec) -> int:
    return machine.nodes * max(machine.node.gpus_per_node, 1)


def select_algorithm(machine: MachineSpec, op: str,
                     nbytes: int) -> CollectiveTuningResult:
    """Argmin over the registry for one cell, default-biased tie-break."""
    try:
        algorithms = COLLECTIVE_ALGORITHMS[op]
    except KeyError:
        raise KeyError(f"unknown collective {op!r}; "
                       f"known: {sorted(COLLECTIVE_ALGORITHMS)}") from None
    link = machine_link(machine)
    p = machine_ranks(machine)
    default_name = DEFAULT_COLLECTIVE_ALGORITHM[op]
    times = {name: fn(p, float(nbytes), link)  # type: ignore[operator]
             for name, fn in algorithms.items()}
    default_time = times[default_name]
    best_name, best_time = default_name, default_time
    for name, t in times.items():
        if t < best_time:
            best_name, best_time = name, t
    return CollectiveTuningResult(
        machine=machine.name, op=op, nbytes=int(nbytes), ranks=p,
        default_algorithm=default_name, default_time=default_time,
        algorithm=best_name, time=best_time,
    )


def tune_collectives(machine: MachineSpec, *,
                     message_sizes: tuple[int, ...] = MESSAGE_SIZES,
                     ) -> list[CollectiveTuningResult]:
    """The full selection table for *machine*, ops x message sizes."""
    return [
        select_algorithm(machine, op, nbytes)
        for op in sorted(COLLECTIVE_ALGORITHMS)
        for nbytes in message_sizes
    ]
