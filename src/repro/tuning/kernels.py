"""Per-app kernel workloads the navigator tunes, per machine.

Each builder returns the app's shipped per-step kernel list on the device
that app actually binds on that machine — the *pre-launch-tuning* state:
synchronous launches, no fusion beyond what the app's own numerics
require.  That is the honest baseline for a launch-config autotuner; for
Pele and E3SM it is exactly the paper's "ported but not yet latency-tuned"
code state whose hand-optimization (§2.2, §3.5) the navigator has to
rediscover.

Workload construction is deterministic (LAMMPS' divergence statistics come
from a seeded crystal; everything else is closed-form), so tuned numbers
re-derive bit-for-bit from the (app, machine) pair.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.apps import coast as _coast
from repro.apps import comet as _comet
from repro.apps import exasky as _exasky
from repro.apps import gamess as _gamess
from repro.apps import gests as _gests
from repro.apps import lammps as _lammps
from repro.apps import lsms as _lsms
from repro.apps import nuccor as _nuccor
from repro.apps import pele as _pele
from repro.chem.rimp2 import rimp2_kernel_spec
from repro.cloud.crm import crm_kernel_ensemble
from repro.gpu.kernel import KernelSpec
from repro.graph.tuning import TileConfig, kernel_for_config
from repro.hardware.gpu import MI250X, V100, GPUSpec
from repro.hardware.machine import MachineSpec
from repro.linalg.blas import gemm_kernel_spec
from repro.linalg.solver import getrf_flops, getrs_flops, solver_kernel_spec
from repro.similarity.gemmtally import gemmtally_kernel_specs
from repro.spectral.psdns import psdns_device_kernels


@dataclass(frozen=True)
class AppWorkload:
    """One app's tunable step on one machine."""

    app: str
    machine: str
    device: GPUSpec
    kernels: tuple[KernelSpec, ...]
    default_async: bool = False  # the shipped launch mode (sync everywhere)


def _is_summit(machine: MachineSpec) -> bool:
    return machine.name.lower() == "summit"


def _package_gpu(machine: MachineSpec) -> GPUSpec:
    """The full-package device the library-bound apps time against."""
    return V100 if _is_summit(machine) else MI250X


def _pele_workload(machine: MachineSpec) -> AppWorkload:
    # the cvode-batched state: chemistry is batched but hydro sweeps are
    # still un-fused and launches synchronous — the pre-§2.2-tuning state
    kernels = _pele._gpu_kernels(machine, "cvode-batched", _pele.PeleConfig())
    return AppWorkload("pele", machine.name, machine.node.gpu, tuple(kernels))


def _comet_workload(machine: MachineSpec) -> AppWorkload:
    eff = (_comet.CUBLAS_GENERIC_EFFICIENCY if _is_summit(machine)
           else _comet.ROCBLAS_CODESIGNED_EFFICIENCY)
    cfg = _comet.CometConfig()
    specs = gemmtally_kernel_specs(cfg.vectors_per_gpu, cfg.fields,
                                   efficiency=eff)
    return AppWorkload("comet", machine.name, _package_gpu(machine),
                       tuple(specs))


def _exasky_workload(machine: MachineSpec) -> AppWorkload:
    kernels = _exasky._kernels(_exasky.ExaskyConfig(),
                               wavefront64_tuned=not _is_summit(machine))
    return AppWorkload("exasky", machine.name, machine.node.gpu,
                       tuple(kernels))


def _gamess_workload(machine: MachineSpec) -> AppWorkload:
    device = _package_gpu(machine)
    efficiency = 0.92 if device.vendor.value == "nvidia" else 0.80
    cfg = _gamess.GamessConfig()
    spec = rimp2_kernel_spec(cfg.nocc, cfg.nvirt, cfg.naux,
                             efficiency=efficiency)
    spec = dataclasses.replace(spec, uses_matrix_engine=False)
    return AppWorkload("gamess", machine.name, device, (spec,))


def _lsms_workload(machine: MachineSpec) -> AppWorkload:
    device = _package_gpu(machine)
    cfg = _lsms.LsmsConfig()
    assembly = _lsms.assembly_kernel(cfg, index_math_optimized=True)
    n, b = cfg.matrix_size, cfg.block_size
    if _is_summit(machine):
        from repro.linalg.solver import zblock_lu_flops

        flops, eff, method = (zblock_lu_flops(n, b),
                              _lsms.ZBLOCK_LU_EFFICIENCY, "zblock_lu")
    else:
        flops, eff, method = (getrf_flops(n) + getrs_flops(n, b),
                              _lsms.GETRF_EFFICIENCY, "getrf")
    solver = solver_kernel_spec(f"tau_{method}", flops, n, efficiency=eff)
    return AppWorkload("lsms", machine.name, device, (assembly, solver))


def _nuccor_workload(machine: MachineSpec) -> AppWorkload:
    cfg = _nuccor.NuccorConfig()
    spec = gemm_kernel_spec(cfg.block_dim, cfg.block_dim, cfg.block_dim,
                            efficiency=cfg.library_efficiency,
                            use_matrix_engine=False)
    spec = dataclasses.replace(
        spec, launch_count=cfg.contractions_per_iteration)
    return AppWorkload("nuccor", machine.name, _package_gpu(machine), (spec,))


def _lammps_workload(machine: MachineSpec) -> AppWorkload:
    # optimized ReaxFF state (preprocessed tuples, spill fix, fused QEq);
    # the QEq allreduce is communication and stays out of the kernel step
    cfg = _lammps.LammpsConfig()
    device = machine.node.gpu
    pre = _lammps.preprocessor_kernel(cfg)
    force = _lammps.torsion_kernel(cfg, preprocessed=True, spill_fixed=True)
    force = dataclasses.replace(force, launch_count=2)  # torsion + angular
    spmv_bytes = _lammps.ATOMS_PER_GPU * _lammps.QEQ_ROW_BYTES
    spmv = KernelSpec(
        name="qeq_spmv",
        flops=2.0 * _lammps.ATOMS_PER_GPU * 40 * 2,
        bytes_read=spmv_bytes,
        bytes_written=_lammps.ATOMS_PER_GPU * 8.0 * 2,
        threads=_lammps.ATOMS_PER_GPU,
        precision=force.precision,
        registers_per_thread=64,
        launch_count=_lammps.QEQ_ITERATIONS,
    )
    return AppWorkload("lammps", machine.name, device, (pre, force, spmv))


def _e3sm_workload(machine: MachineSpec) -> AppWorkload:
    # the raw CRM ensemble, unfused and launched synchronously: §3.5's
    # starting point, whose three levers the navigator must rediscover
    kernels = crm_kernel_ensemble(columns=_e3sm_columns())
    return AppWorkload("e3sm", machine.name, machine.node.gpu, tuple(kernels))


def _e3sm_columns() -> int:
    from repro.apps.e3sm import E3smConfig

    return E3smConfig().columns_per_gpu


def _gests_workload(machine: MachineSpec) -> AppWorkload:
    cfg = _gests.GestsConfig()
    if _is_summit(machine):
        n, ranks = cfg.summit_n, cfg.summit_ranks
    else:
        n, ranks = cfg.frontier_n, cfg.frontier_ranks
    fft, pointwise = psdns_device_kernels(n, ranks)
    from repro.spectral.psdns import FFTS_PER_STEP

    fft = dataclasses.replace(fft, launch_count=FFTS_PER_STEP)
    return AppWorkload("gests", machine.name, machine.node.gpu,
                       (fft, pointwise))


#: COAST's pre-autotuning reference tiling (mid-grid, LDS-feasible
#: everywhere): the configuration a first compile ships before the §3.9
#: tile search runs.
COAST_REFERENCE_TILE = TileConfig(block_tile=64, thread_tile=4, k_tile=16)


def _coast_workload(machine: MachineSpec) -> AppWorkload:
    cfg = _coast.CoastConfig()
    spec = kernel_for_config(cfg.matrix_n, COAST_REFERENCE_TILE)
    return AppWorkload("coast", machine.name, _package_gpu(machine), (spec,))


_BUILDERS = {
    "pele": _pele_workload,
    "comet": _comet_workload,
    "exasky": _exasky_workload,
    "gamess": _gamess_workload,
    "lsms": _lsms_workload,
    "nuccor": _nuccor_workload,
    "lammps": _lammps_workload,
    "e3sm": _e3sm_workload,
    "gests": _gests_workload,
    "coast": _coast_workload,
}

#: The ten paper apps, in report order.
TUNABLE_APPS: tuple[str, ...] = tuple(_BUILDERS)


def build_workload(app: str, machine: MachineSpec) -> AppWorkload:
    """The shipped kernel workload of *app* on *machine*."""
    try:
        builder = _BUILDERS[app]
    except KeyError:
        raise KeyError(
            f"unknown app {app!r}; known: {sorted(_BUILDERS)}") from None
    return builder(machine)
