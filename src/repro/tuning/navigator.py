"""The autotuning navigator: one seeded pass over every knob domain.

:func:`run_navigator` searches, for each machine in
:data:`~repro.hardware.catalog.TUNING_MACHINES`:

* **kernel launch configs** per app — budgeted grid search over the
  :func:`~repro.tuning.space.kernel_config_grid` knobs, objective
  :func:`~repro.tuning.space.sequence_time`;
* **checkpoint cadence** — successive halving over interval candidates
  against fault-injected campaigns (:mod:`repro.tuning.checkpoint`);
* **collective algorithms** — argmin over the α-β registry
  (:mod:`repro.tuning.collectives`).

All randomness flows from one ``numpy.random.SeedSequence``: children are
spawned in a fixed order (per machine, then per app, in report order), so
the same ``(seed, budget)`` yields a byte-identical
:class:`TuningReport` — across processes, which the determinism test
checks literally on the canonical JSON.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from repro.core.report import render_series
from repro.hardware.catalog import TUNING_MACHINES
from repro.hardware.machine import MachineSpec
from repro.tuning.checkpoint import (
    CheckpointFidelity,
    CheckpointTuningResult,
    tune_checkpoint_interval,
)
from repro.tuning.collectives import (
    MESSAGE_SIZES,
    CollectiveTuningResult,
    tune_collectives,
)
from repro.tuning.kernels import TUNABLE_APPS, build_workload
from repro.tuning.search import grid_search
from repro.tuning.space import KernelConfig, kernel_config_grid, sequence_time


@dataclass(frozen=True)
class TuningBudget:
    """How much search each domain is allowed."""

    kernel_evals: int = 128  # configs per (app, machine) cell; full grid
    # final rung spans ~3 compressed MTBFs so the fault process, not the
    # checkpoint count alone, decides the interval
    checkpoint_rungs: tuple[CheckpointFidelity, ...] = (
        CheckpointFidelity(nsteps=96, seeds=(0, 1)),
        CheckpointFidelity(nsteps=384, seeds=(0, 1, 2)),
    )
    checkpoint_particles: int = 96
    message_sizes: tuple[int, ...] = MESSAGE_SIZES

    @classmethod
    def quick(cls) -> "TuningBudget":
        """The CI smoke budget: subsampled grid, short campaigns."""
        return cls(
            kernel_evals=48,
            checkpoint_rungs=(
                CheckpointFidelity(nsteps=48, seeds=(0,)),
                CheckpointFidelity(nsteps=192, seeds=(0, 1)),
            ),
            checkpoint_particles=64,
        )

    def describe(self) -> dict:
        return {
            "kernel_evals": self.kernel_evals,
            "checkpoint_rungs": [r.describe() for r in self.checkpoint_rungs],
            "checkpoint_particles": self.checkpoint_particles,
            "message_sizes": list(self.message_sizes),
        }


@dataclass(frozen=True)
class KernelTuningResult:
    """Tuned launch config for one (app, machine) cell."""

    app: str
    machine: str
    device: str
    default_time: float
    tuned_time: float
    config: KernelConfig
    evaluated: int

    @property
    def speedup(self) -> float:
        return self.default_time / self.tuned_time if self.tuned_time else 1.0

    @property
    def improved(self) -> bool:
        return self.tuned_time < self.default_time


@dataclass(frozen=True)
class TuningReport:
    """Everything one navigator pass measured and chose."""

    seed: int
    budget: TuningBudget
    machines: tuple[str, ...]
    kernel: tuple[KernelTuningResult, ...]
    checkpoint: tuple[CheckpointTuningResult, ...]
    collectives: tuple[CollectiveTuningResult, ...] = field(default=())

    def kernel_result(self, app: str, machine: str) -> KernelTuningResult:
        for r in self.kernel:
            if r.app == app and r.machine == machine:
                return r
        raise KeyError(f"no kernel result for ({app!r}, {machine!r})")

    def improved_apps(self, machine: str | None = None) -> list[str]:
        """Apps with a strictly-better-than-default config (any machine,
        or one machine when given) — the acceptance metric."""
        return sorted({
            r.app for r in self.kernel
            if r.improved and (machine is None or r.machine == machine)
        })

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "budget": self.budget.describe(),
            "machines": list(self.machines),
            "kernel": [
                {
                    "app": r.app,
                    "machine": r.machine,
                    "device": r.device,
                    "default_time": r.default_time,
                    "tuned_time": r.tuned_time,
                    "speedup": r.speedup,
                    "config": r.config.describe(),
                    "evaluated": r.evaluated,
                }
                for r in self.kernel
            ],
            "checkpoint": [
                {
                    "machine": r.machine,
                    "nodes": r.nodes,
                    "machine_ranks": r.machine_ranks,
                    "default_interval_steps": r.default_interval_steps,
                    "default_overhead": r.default_overhead,
                    "tuned_interval_steps": r.tuned_interval_steps,
                    "tuned_overhead": r.tuned_overhead,
                    "speedup": r.speedup,
                    "w_star_steps": r.w_star_steps,
                    "campaigns": r.campaigns,
                    "fidelity": r.fidelity.describe(),
                }
                for r in self.checkpoint
            ],
            "collectives": [
                {
                    "machine": r.machine,
                    "op": r.op,
                    "nbytes": r.nbytes,
                    "ranks": r.ranks,
                    "default_algorithm": r.default_algorithm,
                    "default_time": r.default_time,
                    "algorithm": r.algorithm,
                    "time": r.time,
                    "speedup": r.speedup,
                }
                for r in self.collectives
            ],
        }

    def to_json(self) -> str:
        """Canonical serialization: the byte-identity unit of the
        determinism contract (sorted keys, fixed separators, repr
        floats)."""
        return json.dumps(self.to_dict(), sort_keys=True,
                          separators=(",", ":"))

    def render(self) -> str:
        lines = []
        for machine in self.machines:
            rows = [
                (f"{r.app:8s} {_describe_config(r.config):34s}", r.speedup)
                for r in self.kernel if r.machine == machine
            ]
            lines.append(render_series(
                f"{machine}: tuned-vs-default kernel speedup", rows,
                value_format="{:.3f}x"))
        for r in self.checkpoint:
            lines.append(
                f"{r.machine}: checkpoint every {r.tuned_interval_steps} "
                f"steps (default {r.default_interval_steps}): overhead "
                f"{r.default_overhead:.3f} -> {r.tuned_overhead:.3f}, "
                f"W*={r.w_star_steps:.0f} steps "
                f"(agreement {r.daly_agreement_factor:.2f}x)")
        switched = [r for r in self.collectives
                    if r.algorithm != r.default_algorithm]
        lines.append(
            f"collectives: {len(switched)}/{len(self.collectives)} cells "
            "switch algorithm; largest win "
            + (f"{max(r.speedup for r in switched):.1f}x" if switched
               else "n/a"))
        return "\n".join(lines)


def _describe_config(config: KernelConfig) -> str:
    knobs = []
    if config.fuse_group > 1:
        knobs.append(f"fuse{config.fuse_group}")
    if config.register_cap is not None:
        knobs.append(f"cap{config.register_cap}")
    if config.workgroup_size is not None:
        knobs.append(f"wg{config.workgroup_size}")
    if config.fission_parts > 1:
        knobs.append(f"fission{config.fission_parts}")
    if config.same_stream_async:
        knobs.append("async")
    return "+".join(knobs) if knobs else "default"


def tune_app_kernels(app: str, machine: MachineSpec, *,
                     budget: int,
                     seed_seq: np.random.SeedSequence) -> KernelTuningResult:
    """Budgeted grid search over launch configs for one cell."""
    workload = build_workload(app, machine)
    kernels = list(workload.kernels)
    grid = kernel_config_grid()

    def objective(config: KernelConfig) -> float:
        return sequence_time(config, kernels, workload.device,
                             default_async=workload.default_async)

    default_time = objective(KernelConfig())
    result = grid_search(grid, objective, budget=budget, seed_seq=seed_seq)
    tuned = grid[result.best_index]
    return KernelTuningResult(
        app=app, machine=machine.name, device=workload.device.name,
        default_time=default_time, tuned_time=result.best_value,
        config=tuned, evaluated=result.evaluated,
    )


def run_navigator(
    *,
    seed: int = 0,
    budget: TuningBudget | None = None,
    machines: tuple[MachineSpec, ...] = TUNING_MACHINES,
    apps: tuple[str, ...] = TUNABLE_APPS,
    tune_checkpoints: bool = True,
) -> TuningReport:
    """One full tuning pass.  Same (seed, budget) => same report bytes."""
    budget = budget or TuningBudget()
    root = np.random.SeedSequence(seed)
    # one child per (machine, app) cell, spawned in fixed report order
    children = iter(root.spawn(len(machines) * len(apps)))
    kernel_results = []
    for machine in machines:
        for app in apps:
            kernel_results.append(tune_app_kernels(
                app, machine, budget=budget.kernel_evals,
                seed_seq=next(children)))
    checkpoint_results = []
    if tune_checkpoints:
        for machine in machines:
            checkpoint_results.append(tune_checkpoint_interval(
                machine, rungs=budget.checkpoint_rungs,
                nparticles=budget.checkpoint_particles))
    collective_results = []
    for machine in machines:
        collective_results.extend(
            tune_collectives(machine, message_sizes=budget.message_sizes))
    return TuningReport(
        seed=seed,
        budget=budget,
        machines=tuple(m.name for m in machines),
        kernel=tuple(kernel_results),
        checkpoint=tuple(checkpoint_results),
        collectives=tuple(collective_results),
    )
