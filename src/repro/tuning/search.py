"""Budgeted, seeded search strategies for the navigator.

Two strategies cover everything the tuner needs (ISSUE 10: "grid +
successive-halving is enough"):

* :func:`grid_search` — enumerate a candidate list against a deterministic
  objective; when the list exceeds the budget, a SeedSequence-derived
  subsample (order-preserving, so the identity candidate at index 0
  survives subsampling of the knob grid) keeps the cost bounded.
* :func:`successive_halving` — for *stochastic* objectives measured at a
  chosen fidelity (fault-injected campaigns): evaluate every candidate
  cheaply, keep the best half, re-measure the survivors at higher
  fidelity, repeat.  Rung fidelities and seeds are caller-supplied, so
  the whole schedule is reproducible.

No wall clock, no unseeded randomness: given the same seed and budget the
search visits the same candidates in the same order and breaks ties by
candidate order — the determinism audit's contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence, TypeVar

import numpy as np

C = TypeVar("C")


def seeded_subset(n_candidates: int, budget: int,
                  seed_seq: np.random.SeedSequence) -> list[int]:
    """Sorted candidate indices: all of them, or a seeded subsample.

    Index 0 is always kept (the grid puts the identity/default there);
    the remaining budget draws without replacement from the rest.
    """
    if n_candidates < 0 or budget < 1:
        raise ValueError("need a non-negative candidate count and budget >= 1")
    if n_candidates <= budget:
        return list(range(n_candidates))
    rng = np.random.default_rng(seed_seq)
    rest = rng.choice(n_candidates - 1, size=budget - 1, replace=False) + 1
    return [0] + sorted(int(i) for i in rest)


@dataclass(frozen=True)
class SearchResult:
    """Outcome of one budgeted search over one candidate list."""

    best_index: int  # index into the *original* candidate list
    best_value: float
    evaluated: int


def grid_search(candidates: Sequence[C], objective: Callable[[C], float], *,
                budget: int, seed_seq: np.random.SeedSequence) -> SearchResult:
    """Minimize a deterministic objective over (a seeded subset of) a grid.

    Ties break toward the earlier candidate, so the result is unique and
    reproducible regardless of float noise patterns.
    """
    if not candidates:
        raise ValueError("empty candidate list")
    indices = seeded_subset(len(candidates), budget, seed_seq)
    best_i, best_v = indices[0], objective(candidates[indices[0]])
    for i in indices[1:]:
        v = objective(candidates[i])
        if v < best_v:
            best_i, best_v = i, v
    return SearchResult(best_index=best_i, best_value=best_v,
                        evaluated=len(indices))


def successive_halving(
    candidates: Sequence[C],
    objective: Callable[[C, object], float],
    rungs: Sequence[object],
    *,
    keep_fraction: float = 0.5,
) -> tuple[SearchResult, dict[int, float]]:
    """Rising-fidelity elimination: measure, keep the best, re-measure.

    ``objective(candidate, rung)`` measures one candidate at one rung's
    fidelity (e.g. ``rung = (nsteps, seeds)``).  Each rung keeps
    ``ceil(keep_fraction * n)`` survivors by measured value (ties to the
    earlier candidate); the final rung's argmin wins.  Returns the result
    plus every surviving candidate's final-rung value (index -> value),
    which the checkpoint tuner records as the measured band.
    """
    if not candidates:
        raise ValueError("empty candidate list")
    if not rungs:
        raise ValueError("need at least one fidelity rung")
    if not 0.0 < keep_fraction <= 1.0:
        raise ValueError("keep_fraction must be in (0, 1]")
    alive = list(range(len(candidates)))
    evaluated = 0
    values: dict[int, float] = {}
    for r, rung in enumerate(rungs):
        values = {i: objective(candidates[i], rung) for i in alive}
        evaluated += len(alive)
        if r < len(rungs) - 1:
            keep = max(1, int(np.ceil(len(alive) * keep_fraction)))
            alive = sorted(alive, key=lambda i: (values[i], i))[:keep]
            alive.sort()
    best_i = min(values, key=lambda i: (values[i], i))
    return (
        SearchResult(best_index=best_i, best_value=values[best_i],
                     evaluated=evaluated),
        values,
    )
