"""The kernel launch-configuration search space.

A :class:`KernelConfig` is one point in the knob space the navigator
searches: workgroup size, a voluntary register cap, fission of the hot
kernel, fusion of small adjacent kernels, and same-stream asynchronous
launching.  Every knob maps onto a transformation the paper's teams
actually applied (E3SM §3.5 fusion/fission/async, LAMMPS §3.10 register
pressure, COAST §3.9 tile/launch geometry), expressed through the
:mod:`repro.gpu` kernel transformations so the tuned descriptor stays a
plain :class:`~repro.gpu.kernel.KernelSpec` list the rest of the repo can
time, trace, and launch.

Applying a config is a *pure* function of the kernel list and the device:
no randomness, no wall clock — which is what lets the generated regression
checks re-derive every tuned number bit-for-bit.
"""

from __future__ import annotations

import itertools
from dataclasses import asdict, dataclass, replace

from repro.gpu.kernel import KernelSpec, cap_registers, fission, fuse
from repro.gpu.perfmodel import time_kernel, time_kernel_sequence
from repro.hardware.gpu import GPUSpec

#: flops-per-thread below which a kernel counts as "small" for fusion —
#: the same threshold :func:`repro.cloud.crm.optimize_ensemble` uses.
SMALL_KERNEL_FLOPS_PER_THREAD = 64.0


@dataclass(frozen=True)
class KernelConfig:
    """One candidate launch configuration.

    ``None`` means "leave the app's shipped value alone", so
    ``KernelConfig()`` is the identity — the default every margin is
    measured against.
    """

    workgroup_size: int | None = None
    register_cap: int | None = None
    fission_parts: int = 1
    fuse_group: int = 1
    same_stream_async: bool | None = None

    def __post_init__(self) -> None:
        if self.workgroup_size is not None and self.workgroup_size < 32:
            raise ValueError("workgroup_size must be >= 32")
        if self.register_cap is not None and self.register_cap < 32:
            raise ValueError("register_cap must be >= 32")
        if self.fission_parts < 1:
            raise ValueError("fission_parts must be >= 1")
        if self.fuse_group < 1:
            raise ValueError("fuse_group must be >= 1")

    @property
    def is_default(self) -> bool:
        return self == KernelConfig()

    def describe(self) -> dict:
        """JSON-ready knob dict (the descriptor recorded in reports)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, knobs: dict) -> "KernelConfig":
        return cls(**knobs)

    def apply(self, kernels: list[KernelSpec],
              device: GPUSpec) -> list[KernelSpec]:
        """Transform the app's kernel list into this configuration.

        Fusion first (it can change which kernel is hot), then the
        per-kernel knobs on the hottest remaining kernel: register cap,
        workgroup size, fission.  The async knob does not change the
        list — it changes how :func:`sequence_time` launches it.
        """
        ks = list(kernels)
        if self.fuse_group > 1:
            ks = _fuse_small_runs(ks, self.fuse_group)
        if (self.register_cap is None and self.workgroup_size is None
                and self.fission_parts == 1):
            return ks
        i = hot_kernel_index(ks, device)
        k = ks[i]
        if self.register_cap is not None:
            k = cap_registers(k, self.register_cap)
        if self.workgroup_size is not None:
            k = replace(k, workgroup_size=self.workgroup_size)
        pieces = fission(k, self.fission_parts)
        if k.launch_count > 1:
            # fission splits one launch; the hot kernel's repeat count
            # applies to every piece so total work is conserved
            pieces = [replace(p, launch_count=k.launch_count) for p in pieces]
        ks[i:i + 1] = pieces
        return ks


def hot_kernel_index(kernels: list[KernelSpec], device: GPUSpec) -> int:
    """Index of the kernel dominating the step on *device* (stable argmax)."""
    if not kernels:
        raise ValueError("empty kernel list")
    costs = [
        time_kernel(k, device).total_time * k.launch_count for k in kernels
    ]
    return costs.index(max(costs))


def _fuse_small_runs(kernels: list[KernelSpec], group: int) -> list[KernelSpec]:
    """Fuse adjacent runs of small, single-launch, same-precision kernels.

    Mirrors E3SM's policy (:func:`repro.cloud.crm.optimize_ensemble`):
    only kernels with < ``SMALL_KERNEL_FLOPS_PER_THREAD`` flops per thread
    join a fusion group, groups never cross a precision boundary, and a
    full group flushes eagerly.
    """
    out: list[KernelSpec] = []
    pending: list[KernelSpec] = []

    def flush() -> None:
        if not pending:
            return
        out.append(fuse(list(pending)) if len(pending) > 1 else pending[0])
        pending.clear()

    for k in kernels:
        small = (k.flops / max(k.threads, 1) < SMALL_KERNEL_FLOPS_PER_THREAD
                 and k.launch_count == 1)
        if small and (not pending or pending[0].precision == k.precision):
            pending.append(k)
            if len(pending) == group:
                flush()
        else:
            flush()
            out.append(k)
    flush()
    return out


def sequence_time(config: KernelConfig, kernels: list[KernelSpec],
                  device: GPUSpec, *, default_async: bool = False) -> float:
    """The tuning objective: wall time of one step under *config*.

    ``default_async`` is the app's shipped launch mode; the config's
    ``same_stream_async`` overrides it when set.
    """
    launch_async = (default_async if config.same_stream_async is None
                    else config.same_stream_async)
    return time_kernel_sequence(
        config.apply(kernels, device), device, same_stream_async=launch_async
    )


#: Knob values the navigator enumerates.  The identity sits at the head of
#: every axis, so the full grid always contains the default config.
WORKGROUP_SIZES: tuple[int | None, ...] = (None, 128, 256, 512)
REGISTER_CAPS: tuple[int | None, ...] = (None, 64, 96, 128)
FISSION_PARTS: tuple[int, ...] = (1, 2)
FUSE_GROUPS: tuple[int, ...] = (1, 4)
ASYNC_CHOICES: tuple[bool | None, ...] = (None, True)


def kernel_config_grid() -> list[KernelConfig]:
    """The full deterministic knob grid, identity first."""
    return [
        KernelConfig(workgroup_size=wg, register_cap=cap, fission_parts=fp,
                     fuse_group=fg, same_stream_async=sync)
        for wg, cap, fp, fg, sync in itertools.product(
            WORKGROUP_SIZES, REGISTER_CAPS, FISSION_PARTS, FUSE_GROUPS,
            ASYNC_CHOICES)
    ]
