"""ABFT property tests: detection is total above roundoff, silent below.

The two measurable claims the checksum layer makes (module docstring of
:mod:`repro.resilience.abft`) are pinned here with hypothesis:

* **zero false positives** — clean random inputs of every shape never
  trip a checksum, however adversarial the magnitudes;
* **100% detection above the roundoff threshold** — a single random bit
  flip whose induced change exceeds the published tolerance is *always*
  detected (and, for a product entry, located and corrected back to the
  original value).  Flips below the threshold are indistinguishable from
  accumulated roundoff by construction, so nothing is asserted there —
  that boundary is the design, not a gap.

Integer tallies have zero tolerance, so for them the property is
unconditional: every flip of every bit is detected and corrected.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.linalg.batched import (
    BatchedLU,
    batched_lu_factor,
    batched_lu_factor_checked,
    batched_lu_solve_factored,
)
from repro.resilience.abft import (
    AbftReport,
    ChecksummedGemm,
    SdcDetected,
    checksummed_matmul,
    flip_bit,
    gemm_with_checksums,
    lu_checksum,
    lu_checksum_residual,
    require_finite,
    solve_residual_envelope,
    verify_gemm,
    verify_lu,
    verify_solve,
)
from repro.similarity.gemmtally import (
    tally_2way,
    tally_marginal_checksums,
    verify_tallies,
)


def _random_gemm(rng, n, m, p, scale):
    A = scale * rng.standard_normal((n, m))
    B = scale * rng.standard_normal((m, p))
    return A, B


# -- clean inputs: zero false positives ------------------------------------------


class TestNoFalsePositives:
    @given(seed=st.integers(min_value=0, max_value=10_000),
           n=st.integers(min_value=1, max_value=24),
           m=st.integers(min_value=1, max_value=24),
           p=st.integers(min_value=1, max_value=24),
           log_scale=st.integers(min_value=-8, max_value=8))
    @settings(max_examples=200, deadline=None)
    def test_clean_gemm_never_trips(self, seed, n, m, p, log_scale):
        rng = np.random.default_rng(seed)
        A, B = _random_gemm(rng, n, m, p, 10.0 ** log_scale)
        report = verify_gemm(gemm_with_checksums(A, B))
        assert report.clean
        assert report.checked == n + p

    @given(seed=st.integers(min_value=0, max_value=10_000),
           batch=st.integers(min_value=1, max_value=6),
           n=st.integers(min_value=1, max_value=16))
    @settings(max_examples=150, deadline=None)
    def test_clean_lu_never_trips(self, seed, batch, n):
        rng = np.random.default_rng(seed)
        mats = rng.standard_normal((batch, n, n))
        mats[:, np.arange(n), np.arange(n)] += n  # well-conditioned
        checksum = lu_checksum(mats)
        lu, piv = batched_lu_factor(mats)
        assert verify_lu(lu, piv, checksum).clean

    @given(seed=st.integers(min_value=0, max_value=10_000),
           batch=st.integers(min_value=1, max_value=6),
           n=st.integers(min_value=1, max_value=16))
    @settings(max_examples=150, deadline=None)
    def test_clean_solve_never_trips(self, seed, batch, n):
        rng = np.random.default_rng(seed)
        mats = rng.standard_normal((batch, n, n))
        mats[:, np.arange(n), np.arange(n)] += n
        rhs = rng.standard_normal((batch, n))
        lu, piv = batched_lu_factor(mats)
        x = batched_lu_solve_factored(lu, piv, rhs)
        assert verify_solve(mats, x, rhs).clean

    @given(seed=st.integers(min_value=0, max_value=10_000),
           nvec=st.integers(min_value=2, max_value=10),
           nfields=st.integers(min_value=1, max_value=32))
    @settings(max_examples=100, deadline=None)
    def test_clean_tallies_never_trip(self, seed, nvec, nfields):
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 2, (nvec, nfields), dtype=np.int8)
        counts = tally_2way(data, abft=True)  # raises on any mismatch
        row, col = tally_marginal_checksums(data)
        assert verify_tallies(counts, row, col).clean


# -- single bit flips: total detection above the threshold -----------------------


class TestGemmBitFlipDetection:
    @given(seed=st.integers(min_value=0, max_value=10_000),
           n=st.integers(min_value=2, max_value=16),
           m=st.integers(min_value=2, max_value=16),
           p=st.integers(min_value=2, max_value=16),
           element=st.integers(min_value=0, max_value=2**30),
           bit=st.integers(min_value=0, max_value=63))
    @settings(max_examples=300, deadline=None)
    def test_flip_above_threshold_is_detected_and_corrected(
            self, seed, n, m, p, element, bit):
        rng = np.random.default_rng(seed)
        A, B = _random_gemm(rng, n, m, p, 1.0)
        g = gemm_with_checksums(A, B)
        i, j = divmod(element % (n * p), p)
        original = g.C[i, j]
        flip_bit(g.C, i * p + j, bit)
        with np.errstate(all="ignore"):  # the flip may be inf/overflow
            delta = g.C[i, j] - original
        tol = max(g.row_tol[i], g.col_tol[j])
        if not np.isfinite(delta):
            # an exponent flip into inf/NaN: detectable, not correctable
            # (the discrepancy itself overflows, so subtraction can't
            # recover the original) — but never silent
            with pytest.raises(SdcDetected):
                verify_gemm(g, correct=True)
            return
        if abs(delta) <= 2.0 * tol:
            return  # sub-roundoff flip: silence is within contract
        report = verify_gemm(g, correct=True)
        assert report.detected > 0
        assert report.corrected == 1
        assert report.locations == ((i, j),)
        # the repair is exact up to the envelope plus the cancellation
        # noise of subtracting the (possibly huge) corrupted value back
        eps = float(np.finfo(np.float64).eps)
        assert abs(g.C[i, j] - original) <= tol + 64.0 * eps * abs(delta)

    @given(seed=st.integers(min_value=0, max_value=10_000),
           bit=st.integers(min_value=52, max_value=62))
    @settings(max_examples=50, deadline=None)
    def test_checksum_entry_flip_is_detected_uncorrectable(self, seed, bit):
        """Damage to the checksum itself breaks one family only: detected,
        reported as uncorrectable, never silently 'repaired'."""
        rng = np.random.default_rng(seed)
        A, B = _random_gemm(rng, 6, 8, 5, 1.0)
        g = gemm_with_checksums(A, B)
        before = g.C.copy()
        flip_bit(g.row_checksum, seed % g.row_checksum.size, bit)
        with pytest.raises(SdcDetected):
            verify_gemm(g, correct=True)
        np.testing.assert_array_equal(g.C, before)

    def test_checksummed_matmul_end_to_end(self):
        rng = np.random.default_rng(0)
        A, B = _random_gemm(rng, 12, 9, 7, 1.0)
        np.testing.assert_allclose(checksummed_matmul(A, B), A @ B)


class TestLuBitFlipDetection:
    @given(seed=st.integers(min_value=0, max_value=10_000),
           batch=st.integers(min_value=1, max_value=4),
           n=st.integers(min_value=2, max_value=12),
           element=st.integers(min_value=0, max_value=2**30),
           bit=st.integers(min_value=0, max_value=63))
    @settings(max_examples=300, deadline=None)
    def test_factor_flip_above_threshold_is_detected(
            self, seed, batch, n, element, bit):
        rng = np.random.default_rng(seed)
        mats = rng.standard_normal((batch, n, n))
        mats[:, np.arange(n), np.arange(n)] += n
        checksum = lu_checksum(mats)
        lu, piv = batched_lu_factor(mats)
        b, rest = divmod(element % lu.size, n * n)
        i, j = divmod(rest, n)
        original = lu[b, i, j]
        flip_bit(lu, element % lu.size, bit)
        with np.errstate(all="ignore"):  # the flip may be inf/overflow
            delta = lu[b, i, j] - original
            # the flip's provable effect on the identity at row i: a U
            # entry shifts U.e[i] by delta directly; an L entry enters
            # scaled by U.e[j] (lower rows multiply the U row sums)
            u_e = np.triu(np.where(np.isfinite(lu), lu, 0.0)).sum(axis=-1)
            effect = delta if j >= i else delta * u_e[b, j]
        _, tol = lu_checksum_residual(lu, piv, checksum)
        if np.isfinite(effect) and abs(effect) <= 4.0 * tol[b, i]:
            return  # effect within the roundoff envelope: silence allowed
        with pytest.raises(SdcDetected):
            verify_lu(lu, piv, checksum)

    def test_factor_checked_round_trip_and_held_audit(self):
        rng = np.random.default_rng(5)
        mats = rng.standard_normal((8, 6, 6))
        mats[:, np.arange(6), np.arange(6)] += 6.0
        lu, piv = batched_lu_factor_checked(mats)
        ref_lu, ref_piv = batched_lu_factor(mats)
        np.testing.assert_array_equal(lu, ref_lu)
        np.testing.assert_array_equal(piv, ref_piv)
        held = BatchedLU(mats, abft=True)
        assert held.verify().clean
        flip_bit(held.lu, 13, 60)  # corrupt the resident factors
        with pytest.raises(SdcDetected):
            held.verify()


class TestSolveBitFlipDetection:
    @given(seed=st.integers(min_value=0, max_value=10_000),
           batch=st.integers(min_value=1, max_value=4),
           n=st.integers(min_value=2, max_value=12),
           element=st.integers(min_value=0, max_value=2**30),
           bit=st.integers(min_value=0, max_value=63))
    @settings(max_examples=300, deadline=None)
    def test_solution_flip_above_threshold_is_detected(
            self, seed, batch, n, element, bit):
        rng = np.random.default_rng(seed)
        mats = rng.standard_normal((batch, n, n))
        mats[:, np.arange(n), np.arange(n)] += n
        rhs = rng.standard_normal((batch, n))
        lu, piv = batched_lu_factor(mats)
        x = batched_lu_solve_factored(lu, piv, rhs)
        b, j = divmod(element % x.size, n)
        original = x[b, j]
        flip_bit(x, element % x.size, bit)
        with np.errstate(all="ignore"):  # the flip may be inf/overflow
            delta = x[b, j] - original
            # equation j moves by at least the diagonal times the flip
            _, tol = solve_residual_envelope(mats, x, rhs)
            effect = mats[b, j, j] * delta
        if np.isfinite(effect) and abs(effect) <= 4.0 * tol[b, j]:
            return
        with pytest.raises(SdcDetected):
            verify_solve(mats, x, rhs)


class TestIntegerTallyFlips:
    """Zero-tolerance checksums: *every* flip detected and corrected."""

    @given(seed=st.integers(min_value=0, max_value=10_000),
           element=st.integers(min_value=0, max_value=2**30),
           bit=st.integers(min_value=0, max_value=40))
    @settings(max_examples=200, deadline=None)
    def test_every_count_flip_detected_and_corrected(self, seed, element, bit):
        rng = np.random.default_rng(seed)
        data = rng.integers(0, 2, (6, 40), dtype=np.int8)
        counts = tally_2way(data)
        reference = counts.copy()
        row, col = tally_marginal_checksums(data)
        flat = counts.reshape(-1)
        idx = element % flat.size
        flat[idx] ^= np.int64(1) << np.int64(bit)
        if flat[idx] == reference.reshape(-1)[idx]:
            return  # the xor was a no-op only if the bit round-tripped
        report = verify_tallies(counts, row, col, correct=True)
        assert report.detected > 0
        assert report.corrected == 1
        np.testing.assert_array_equal(counts, reference)

    def test_located_flip_names_the_state_pair(self):
        rng = np.random.default_rng(1)
        data = rng.integers(0, 2, (5, 32), dtype=np.int8)
        counts = tally_2way(data)
        row, col = tally_marginal_checksums(data)
        counts[1, 0, 3, 2] += 7
        report = verify_tallies(counts, row, col)
        assert report.locations == ((1, 0, 3, 2),)


# -- plausibility primitives -----------------------------------------------------


class TestPrimitives:
    def test_require_finite_passes_and_fails(self):
        require_finite("ok", np.ones(3), np.zeros((2, 2)))
        bad = np.ones(4)
        bad[2] = np.nan
        with pytest.raises(SdcDetected) as exc:
            require_finite("state", bad)
        assert exc.value.location == (2,)

    def test_flip_bit_is_an_involution(self):
        arr = np.linspace(-3.0, 7.0, 16)
        before = arr.copy()
        old = flip_bit(arr, 5, 17)
        assert old == before[5]
        assert arr[5] != before[5]
        flip_bit(arr, 5, 17)
        np.testing.assert_array_equal(arr, before)

    def test_flip_bit_rejects_bad_targets(self):
        with pytest.raises(TypeError):
            flip_bit(np.zeros(4, dtype=np.float32), 0, 0)
        with pytest.raises(ValueError):
            flip_bit(np.zeros(4), 0, 64)
        with pytest.raises(TypeError):
            # a slice reshape(-1) must copy: flipping the copy would be
            # a silent no-op on the live array, so it is refused
            flip_bit(np.zeros((4, 5))[:, ::2], 0, 0)

    def test_report_clean_property(self):
        assert AbftReport().clean
        assert not AbftReport(checked=3, detected=1).clean

    def test_checksummed_gemm_exact_flag(self):
        g = ChecksummedGemm(C=np.zeros((2, 2), dtype=np.int64),
                            row_checksum=np.zeros(2), col_checksum=np.zeros(2),
                            row_tol=np.zeros(2), col_tol=np.zeros(2))
        assert g.exact
