"""Tests for the AMReX-like substrate: boxes, MultiFab, ghosts, EB, hierarchy."""

import numpy as np
import pytest

from repro.amr import (
    AmrHierarchy,
    Box,
    BoxArray,
    GhostExchangeSpec,
    MultiFab,
    asynchronous_step_time,
    build_eb_geometry,
    chop_domain,
    eb_redistribution_weights,
    fill_boundary_time,
    sorted_cut_cells,
    synchronous_step_time,
)
from repro.amr.eb import CellType
from repro.mpisim.costmodel import LinkParameters

DOMAIN = Box(lo=(0, 0, 0), hi=(31, 31, 31))


class TestBox:
    def test_shape_and_cells(self):
        b = Box(lo=(0, 0, 0), hi=(7, 3, 1))
        assert b.shape == (8, 4, 2)
        assert b.ncells == 64

    def test_empty_box_rejected(self):
        with pytest.raises(ValueError):
            Box(lo=(0, 0, 0), hi=(-1, 3, 3))

    def test_grow(self):
        b = Box(lo=(4, 4, 4), hi=(7, 7, 7)).grow(2)
        assert b.lo == (2, 2, 2) and b.hi == (9, 9, 9)

    def test_intersection(self):
        a = Box(lo=(0, 0, 0), hi=(5, 5, 5))
        b = Box(lo=(4, 4, 4), hi=(9, 9, 9))
        c = a.intersection(b)
        assert c == Box(lo=(4, 4, 4), hi=(5, 5, 5))
        far = Box(lo=(10, 10, 10), hi=(12, 12, 12))
        assert a.intersection(far) is None

    def test_refine_coarsen_roundtrip(self):
        b = Box(lo=(2, 4, 6), hi=(5, 7, 9))
        assert b.refine(2).coarsen(2) == b
        assert b.refine(2).ncells == 8 * b.ncells

    def test_refine_invalid_ratio(self):
        with pytest.raises(ValueError):
            Box(lo=(0, 0, 0), hi=(1, 1, 1)).refine(0)

    def test_chop_covers_domain_exactly(self):
        boxes = chop_domain(DOMAIN, 16)
        assert len(boxes) == 8
        assert sum(b.ncells for b in boxes) == DOMAIN.ncells

    def test_chop_handles_remainders(self):
        boxes = chop_domain(Box(lo=(0, 0, 0), hi=(9, 9, 9)), 4)
        assert sum(b.ncells for b in boxes) == 1000
        assert all(max(b.shape) <= 4 for b in boxes)


class TestBoxArray:
    def test_overlap_rejected(self):
        a = Box(lo=(0, 0, 0), hi=(3, 3, 3))
        b = Box(lo=(2, 2, 2), hi=(5, 5, 5))
        with pytest.raises(ValueError, match="overlapping"):
            BoxArray(boxes=(a, b))

    def test_from_domain(self):
        ba = BoxArray.from_domain(DOMAIN, 16)
        assert ba.ncells == DOMAIN.ncells

    def test_distribution_is_balanced(self):
        ba = BoxArray.from_domain(DOMAIN, 8)
        owner = ba.distribute(4)
        loads = [0] * 4
        for i, r in enumerate(owner):
            loads[r] += ba.boxes[i].ncells
        assert max(loads) - min(loads) <= max(b.ncells for b in ba.boxes)

    def test_distribute_validates(self):
        ba = BoxArray.from_domain(DOMAIN, 16)
        with pytest.raises(ValueError):
            ba.distribute(0)


class TestMultiFab:
    def test_ghost_fill_matches_periodic_neighbor_data(self):
        ba = BoxArray.from_domain(DOMAIN, 16)
        mf = MultiFab(ba, DOMAIN, ncomp=1, nghost=2)
        mf.set_from_function(lambda x, y, z: (x + 32 * y + 32 * 32 * z).astype(float))
        mf.fill_boundary()
        # ghost cell values must equal the periodic global function
        for i, b in enumerate(mf.ba):
            fab = mf.fabs[i][..., 0]
            g = mf.nghost
            for axis_offset in ((-1, 0, 0), (0, -1, 0), (0, 0, -1)):
                idx = tuple(
                    g + o for o in axis_offset
                )  # one cell outside the valid region
                gx = (b.lo[0] + axis_offset[0]) % 32
                gy = (b.lo[1] + axis_offset[1]) % 32
                gz = (b.lo[2] + axis_offset[2]) % 32
                expected = float(gx + 32 * gy + 32 * 32 * gz)
                assert fab[idx[0] - g + g - (1 if axis_offset[0] else 0),
                           idx[1] - g + g - (1 if axis_offset[1] else 0),
                           idx[2] - g + g - (1 if axis_offset[2] else 0)] >= 0  # sanity
            # direct check of the full grown region against the function
            ix, iy, iz = mf._global_index(i)
            expected_full = (ix[:, None, None] + 32 * iy[None, :, None]
                             + 32 * 32 * iz[None, None, :]).astype(float)
            np.testing.assert_array_equal(fab, expected_full)

    def test_zero_ghost_fill_is_noop(self):
        ba = BoxArray.from_domain(DOMAIN, 16)
        mf = MultiFab(ba, DOMAIN, nghost=0)
        assert mf.fill_boundary() == 0

    def test_reductions(self):
        ba = BoxArray.from_domain(DOMAIN, 16)
        mf = MultiFab(ba, DOMAIN)
        mf.set_from_function(lambda x, y, z: np.ones_like(x, dtype=float))
        assert mf.sum() == pytest.approx(DOMAIN.ncells)
        assert mf.norm0() == pytest.approx(1.0)

    def test_multicomponent(self):
        ba = BoxArray.from_domain(DOMAIN, 16)
        mf = MultiFab(ba, DOMAIN, ncomp=3, nghost=1)
        mf.fill_boundary()
        assert mf.fabs[0].shape[-1] == 3

    def test_stats_accumulate(self):
        ba = BoxArray.from_domain(DOMAIN, 16)
        mf = MultiFab(ba, DOMAIN, nghost=1)
        mf.fill_boundary()
        mf.fill_boundary()
        assert mf.stats.exchanges == 2
        assert mf.stats.bytes_moved > 0

    def test_invalid_params(self):
        ba = BoxArray.from_domain(DOMAIN, 16)
        with pytest.raises(ValueError):
            MultiFab(ba, DOMAIN, ncomp=0)


class TestGhostTiming:
    LINK = LinkParameters(alpha=2e-6, beta=1.0 / 25e9)

    def test_async_beats_sync_when_compute_covers_comm(self):
        spec = GhostExchangeSpec(neighbors=6, bytes_per_neighbor=1 << 20)
        compute = 10 * fill_boundary_time(spec, self.LINK)
        sync = synchronous_step_time(compute, spec, self.LINK)
        async_ = asynchronous_step_time(compute, spec, self.LINK)
        assert async_ < sync
        # with full overlap, async ≈ compute
        assert async_ == pytest.approx(compute, rel=0.05)

    def test_async_degrades_to_comm_bound(self):
        spec = GhostExchangeSpec(neighbors=6, bytes_per_neighbor=64 << 20)
        compute = 1e-6
        async_ = asynchronous_step_time(compute, spec, self.LINK)
        assert async_ >= fill_boundary_time(spec, self.LINK)

    def test_no_neighbors_is_free(self):
        spec = GhostExchangeSpec(neighbors=0, bytes_per_neighbor=0)
        assert fill_boundary_time(spec, self.LINK) == 0.0

    def test_interior_fraction_validated(self):
        spec = GhostExchangeSpec(neighbors=6, bytes_per_neighbor=1024)
        with pytest.raises(ValueError):
            asynchronous_step_time(1.0, spec, self.LINK, interior_fraction=1.5)


class TestEmbeddedBoundaries:
    def test_sphere_classification(self):
        box = Box(lo=(0, 0, 0), hi=(15, 15, 15))
        # fluid inside a sphere of radius 6 centred at 8
        level_set = lambda x, y, z: np.sqrt((x - 8) ** 2 + (y - 8) ** 2 + (z - 8) ** 2) - 6.0
        geom = build_eb_geometry(box, level_set)
        assert geom.n_regular > 0
        assert geom.n_cut > 0
        assert geom.n_covered > 0
        assert geom.n_regular + geom.n_cut + geom.n_covered == box.ncells

    def test_volume_fractions_bounded(self):
        box = Box(lo=(0, 0, 0), hi=(15, 15, 15))
        geom = build_eb_geometry(box, lambda x, y, z: x - 8.0)
        assert np.all(geom.volume_fraction >= 0.0)
        assert np.all(geom.volume_fraction <= 1.0)
        covered = geom.cell_type == CellType.COVERED.value
        assert np.all(geom.volume_fraction[covered] == 0.0)

    def test_sorted_cut_cells_deterministic_and_sorted(self):
        box = Box(lo=(0, 0, 0), hi=(15, 15, 15))
        geom = build_eb_geometry(
            box, lambda x, y, z: np.sqrt((x - 8) ** 2 + (y - 8) ** 2 + (z - 8) ** 2) - 5.0
        )
        order1 = sorted_cut_cells(geom)
        order2 = sorted_cut_cells(geom)
        np.testing.assert_array_equal(order1, order2)
        vf = geom.volume_fraction.ravel()[order1]
        assert np.all(np.diff(vf) >= -1e-15)

    def test_redistribution_weights_conserve(self):
        box = Box(lo=(0, 0, 0), hi=(15, 15, 15))
        geom = build_eb_geometry(
            box, lambda x, y, z: np.sqrt((x - 8) ** 2 + (y - 8) ** 2 + (z - 8) ** 2) - 5.0
        )
        w = eb_redistribution_weights(geom)
        assert w.sum() == pytest.approx(1.0)


class TestHierarchy:
    def test_regrid_creates_levels(self):
        h = AmrHierarchy(DOMAIN, max_levels=3, max_grid_size=16)
        h.regrid(lambda b: b.lo[0] < 16)
        assert h.nlevels == 3
        assert h.levels[1].ratio_to_coarser == 2

    def test_no_tags_no_levels(self):
        h = AmrHierarchy(DOMAIN, max_levels=3, max_grid_size=16)
        h.regrid(lambda b: False)
        assert h.nlevels == 1

    def test_amr_saves_cells(self):
        h = AmrHierarchy(DOMAIN, max_levels=3, max_grid_size=16)
        h.regrid(lambda b: b.lo == (0, 0, 0))
        assert h.savings_factor() > 1.0
        assert h.composite_cells() < h.equivalent_uniform_cells()

    def test_full_tagging_matches_uniform(self):
        h = AmrHierarchy(DOMAIN, max_levels=2, max_grid_size=16)
        h.regrid(lambda b: True)
        # refining everything: fine level alone equals the uniform fine grid
        assert h.levels[1].ncells == DOMAIN.refine(2).ncells
