"""Tests for the ten application modules (Table 2 bands + app stories)."""

import pytest

from repro.apps import (
    TABLE2_APPS,
    coast,
    comet,
    e3sm,
    exasky,
    gamess,
    gests,
    lammps,
    lsms,
    nuccor,
    pele,
)
from repro.core.speedup import TABLE2_EXPECTED, within_band
from repro.hardware.catalog import FRONTIER, SUMMIT


class TestTable2Bands:
    @pytest.mark.parametrize("name", sorted(TABLE2_EXPECTED))
    def test_speedup_in_band(self, name):
        """Every Table 2 row reproduces within ±35 %."""
        measured = TABLE2_APPS[name].speedup()
        assert within_band(measured, TABLE2_EXPECTED[name]), (
            f"{name}: measured {measured:.2f} vs paper {TABLE2_EXPECTED[name]}"
        )

    def test_speedups_all_exceed_threeish(self):
        """§6: '5x to 7x vs OLCF Summit being typical'."""
        values = [m.speedup() for m in TABLE2_APPS.values()]
        assert min(values) > 3.0
        assert max(values) < 9.0


class TestGamess:
    def test_transfer_optimization_helps(self):
        assert gamess.transfer_optimization_gain() > 1.2

    def test_mbe_scaling_near_ideal_to_2048(self):
        eff = gamess.mbe_scaling(935, [128, 512, 1024, 2048])
        assert all(e > 0.95 for e in eff.values())

    def test_scaling_degrades_for_tiny_problems(self):
        eff = gamess.mbe_scaling(10, [2048])
        assert eff[2048] < 0.1


class TestLsms:
    def test_direct_lu_beats_block_inversion_on_frontier(self):
        """§3.2: 'better performance for the direct solution'."""
        assert lsms.solver_choice_gain_on_frontier() > 1.0

    def test_index_math_fix_improves(self):
        assert lsms.index_math_fix_gain() > 1.0

    def test_solve_time_validates_method(self):
        from repro.hardware.gpu import V100

        with pytest.raises(ValueError):
            lsms.solve_time(V100, lsms.LsmsConfig(), method="qr")


class TestGests:
    def test_fom_target_met(self):
        fom = gests.reference_fom()
        frontier_value = gests.frontier_step().fom(gests.GestsConfig().frontier_n)
        assert fom.meets_target(frontier_value)
        assert fom.achieved_factor(frontier_value) > 4.0

    def test_slabs_beat_pencils(self):
        r = gests.slabs_vs_pencils()
        assert r["slabs"].total < r["pencils"].total

    def test_pencils_scale_past_slab_limit(self):
        t = gests.pencil_only_scale()
        assert t.total > 0


class TestExasky:
    def test_wavefront_fix_is_material(self):
        assert exasky.wavefront_fix_gain() > 1.1

    def test_theta_baseline_factor(self):
        assert 150 < exasky.fom_vs_theta_baseline() < 320


class TestComet:
    def test_exaflops_band(self):
        assert 5.0 < comet.system_exaflops() < 8.5

    def test_weak_scaling_near_perfect(self):
        eff = comet.weak_scaling_efficiency([1, 16, 256, 4096, 9074])
        vals = list(eff.values())
        assert all(v > 0.99 for v in vals)
        assert all(a >= b - 1e-12 for a, b in zip(vals, vals[1:]))

    def test_node_count_validated(self):
        with pytest.raises(ValueError):
            comet.weak_scaling_efficiency([0])


class TestNuccor:
    def test_plugin_demo_identical_numerics(self):
        elapsed = nuccor.plugin_port_demo()
        assert set(elapsed) == {"host", "cublas", "rocblas"}
        assert elapsed["host"] == 0.0
        assert elapsed["rocblas"] > 0.0


class TestPele:
    def test_figure2_monotone_gpu_progression(self):
        hist = pele.figure2_history()
        gpu_times = [t for _, m, _, t in hist if m in ("Summit", "Frontier")]
        assert all(a >= b for a, b in zip(gpu_times, gpu_times[1:]))

    def test_total_improvement_band(self):
        assert 50 < pele.total_improvement() < 110

    def test_gpu_port_is_largest_gain(self):
        hist = pele.figure2_history()
        times = [t for _, _, _, t in hist]
        gains = [a / b for a, b in zip(times, times[1:])]
        assert max(gains) == gains[2]  # Eagle -> Summit GPU port

    def test_weak_scaling_above_80_percent(self):
        assert pele.weak_scaling_efficiency(FRONTIER, "frontier-tuned", 4096) > 0.8

    def test_async_ghost_helps_at_scale(self):
        sync = pele.scaled_step_time(SUMMIT, "cvode-batched", 4096)
        async_ = pele.scaled_step_time(SUMMIT, "fused-async", 4096)
        assert async_ < sync

    def test_unknown_state_rejected(self):
        with pytest.raises(ValueError):
            pele.single_node_step_time(SUMMIT, "quantum")

    def test_gpu_state_on_cpu_machine_rejected(self):
        from repro.hardware.catalog import CORI

        with pytest.raises(ValueError):
            pele.single_node_step_time(CORI, "gpu-port-uvm")


class TestCoast:
    def test_per_gpu_tflops_match_paper(self):
        tf = coast.per_gpu_tflops()
        assert tf["V100"] == pytest.approx(5.6, rel=0.25)
        assert tf["MI250X"] == pytest.approx(30.6, rel=0.25)

    def test_system_scale(self):
        pf = coast.system_petaflops()
        assert pf["Summit"] == pytest.approx(136, rel=0.35)
        assert pf["Frontier"] == pytest.approx(1004, rel=0.35)
        assert pf["Frontier"] > 1000  # "exceeded an exaflop"


class TestLammps:
    def test_measured_divergence_is_severe(self):
        lanes, tuples = lammps.measured_divergence()
        assert lanes < 0.1  # "a handful of threads in the entire wavefront"
        assert tuples > 0

    def test_headline_speedup(self):
        assert lammps.optimization_speedup() > 1.5

    def test_every_lever_helps(self):
        for name, gain in lammps.lever_breakdown().items():
            assert gain > 1.0, name

    def test_qeq_numerics(self):
        assert lammps.qeq_numerics_check()


class TestE3sm:
    def test_meets_throughput_target(self):
        r = e3sm.run(FRONTIER.node.gpu)
        assert r.meets_target

    def test_optimization_gain_large(self):
        assert e3sm.optimization_gain() > 3.0

    def test_pool_allocator_is_a_major_lever(self):
        levers = e3sm.lever_breakdown()
        assert levers["pool allocator"] > 2.0
