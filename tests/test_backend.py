"""Backend parity suite: every array backend against the numpy reference.

The contract of :mod:`repro.backend`: alternate backends are *drop-in*
for the three hot kernel families — integer-exact popcount tallies,
≤1e-9 relative batched LU / pairwise forces, roundoff-level fused
chemistry rates — plus registry semantics, stub behavior, and
checkpoint/restore of a mid-flight integration under a non-default
backend.  Parametrized over whatever backends the process actually has,
so the same file is the acceptance suite for a future numba/cupy/JAX
host (the CI matrix job pins ``REPRO_BACKEND`` to force each one).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.backend import (
    ArrayBackend,
    BackendUnavailable,
    available_backends,
    backend_available,
    get_backend,
    register_backend,
    registered_backends,
    resolve_backend,
)
from repro.backend.numpy_backend import NumpyBackend, popcount_words
from repro.chem.fused import rate_tables
from repro.chem.mechanism import drm19_like_mechanism, h2_o2_mechanism

BACKENDS = available_backends()
REF = get_backend("numpy")


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def _spd_stack(rng, b: int, n: int) -> np.ndarray:
    """Well-conditioned random systems (diagonally dominated)."""
    mats = rng.normal(size=(b, n, n))
    mats[:, np.arange(n), np.arange(n)] += n
    return mats


# ---------------------------------------------------------------------------
# registry semantics
# ---------------------------------------------------------------------------


class TestRegistry:
    def test_numpy_always_available(self):
        assert "numpy" in BACKENDS
        assert isinstance(get_backend("numpy"), NumpyBackend)

    def test_registered_includes_stubs(self):
        names = registered_backends()
        for expected in ("numpy", "numba", "cupy", "jax"):
            assert expected in names

    def test_stubs_never_available(self):
        assert not backend_available("cupy")
        assert not backend_available("jax")

    def test_stub_construction_raises_with_porting_guidance(self):
        with pytest.raises(BackendUnavailable, match="tests/test_backend"):
            get_backend("cupy")

    def test_unknown_name_raises_keyerror(self):
        with pytest.raises(KeyError, match="no-such-engine"):
            get_backend("no-such-engine")

    def test_instances_are_cached(self):
        assert get_backend("numpy") is get_backend("numpy")

    def test_passthrough_and_resolve(self):
        be = get_backend("numpy")
        assert get_backend(be) is be
        assert resolve_backend(be) is be
        assert isinstance(resolve_backend(None), ArrayBackend)

    def test_auto_honors_env_pin(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "numpy")
        assert get_backend("auto").name == "numpy"
        monkeypatch.setenv("REPRO_BACKEND", "cupy")
        with pytest.raises(BackendUnavailable):
            get_backend("auto")

    def test_register_and_probe_gate(self):
        class Fake(NumpyBackend):
            name = "fake-test-backend"

        register_backend("fake-test-backend", Fake, probe=lambda: False)
        try:
            assert "fake-test-backend" in registered_backends()
            assert "fake-test-backend" not in available_backends()
            with pytest.raises(BackendUnavailable):
                get_backend("fake-test-backend")
        finally:
            # leave the registry as the rest of the suite expects it
            import repro.backend as reg

            reg._FACTORIES.pop("fake-test-backend", None)
            reg._PROBES.pop("fake-test-backend", None)
            reg._INSTANCES.pop("fake-test-backend", None)


# ---------------------------------------------------------------------------
# batched LU / inverse parity
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", BACKENDS)
class TestLinalgParity:
    def test_lu_solves_random_systems(self, name):
        be = get_backend(name)
        rng = _rng(7)
        mats = _spd_stack(rng, 12, 6)
        rhs = rng.normal(size=(12, 6))
        lu, piv = be.lu_factor(mats)
        x = be.lu_solve(lu, piv, rhs)
        resid = np.einsum("bij,bj->bi", mats, x) - rhs
        assert np.abs(resid).max() < 1e-9

    def test_lu_matches_reference_within_tolerance(self, name):
        be = get_backend(name)
        rng = _rng(8)
        mats = _spd_stack(rng, 9, 5)
        rhs = rng.normal(size=(9, 5))
        x_ref = REF.lu_solve(*REF.lu_factor(mats), rhs)
        x = be.lu_solve(*be.lu_factor(mats), rhs)
        scale = np.abs(x_ref).max() + 1e-300
        assert np.abs(x - x_ref).max() / scale < 1e-9

    def test_lu_handles_pivoting(self, name):
        be = get_backend(name)
        # leading zero forces a row swap in every system
        mats = np.array([[[0.0, 2.0], [3.0, 1.0]],
                         [[1e-30, 1.0], [1.0, 1.0]]])
        rhs = np.array([[4.0, 5.0], [1.0, 2.0]])
        x = be.lu_solve(*be.lu_factor(mats), rhs)
        resid = np.einsum("bij,bj->bi", mats, x) - rhs
        assert np.abs(resid).max() < 1e-9

    def test_inverse_apply_matches_solve(self, name):
        be = get_backend(name)
        rng = _rng(9)
        mats = _spd_stack(rng, 8, 7)
        rhs = rng.normal(size=(8, 7))
        x = be.inv_apply(be.inv(mats), rhs)
        x_ref = REF.lu_solve(*REF.lu_factor(mats), rhs)
        scale = np.abs(x_ref).max() + 1e-300
        assert np.abs(x - x_ref).max() / scale < 1e-9

    def test_matrix_rhs_solve(self, name):
        be = get_backend(name)
        rng = _rng(10)
        mats = _spd_stack(rng, 4, 5)
        rhs = rng.normal(size=(4, 5, 3))
        x = be.lu_solve(*be.lu_factor(mats), rhs)
        resid = np.matmul(mats, x) - rhs
        assert np.abs(resid).max() < 1e-9


@settings(max_examples=20, deadline=None)
@given(
    b=st.integers(1, 6),
    n=st.integers(1, 8),
    seed=st.integers(0, 2**31 - 1),
)
def test_lu_parity_property(b, n, seed):
    """All available backends agree on random well-conditioned stacks."""
    rng = _rng(seed)
    mats = _spd_stack(rng, b, n)
    rhs = rng.normal(size=(b, n))
    x_ref = REF.lu_solve(*REF.lu_factor(mats), rhs)
    scale = np.abs(x_ref).max() + 1e-300
    for name in BACKENDS:
        be = get_backend(name)
        x = be.lu_solve(*be.lu_factor(mats), rhs)
        assert np.abs(x - x_ref).max() / scale < 1e-9, name


# ---------------------------------------------------------------------------
# fused chemistry rates parity
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", BACKENDS)
@pytest.mark.parametrize("mech_fn", [h2_o2_mechanism, drm19_like_mechanism])
class TestRatesParity:
    def test_wdot_matches_generated_kernel(self, name, mech_fn):
        from repro.chem.codegen import compile_batched_kernels

        mech = mech_fn()
        be = get_backend(name)
        kernel = be.rates_kernel(rate_tables(mech))
        rng = _rng(3)
        T = rng.uniform(1200.0, 1800.0, 5)
        C = rng.uniform(0.05, 1.0, (5, mech.n_species))
        kf, kr = kernel.rate_constants(T)
        got = kernel.wdot(kf, kr, C)
        want = compile_batched_kernels(mech).rates(T, C)
        scale = np.abs(want).max() + 1e-300
        assert np.abs(got - want).max() / scale < 1e-12

    def test_wdot_broadcasts_fd_perturbation_stack(self, name, mech_fn):
        """The FD-Jacobian shape: (n, B, n) leading-axis broadcasting."""
        mech = mech_fn()
        be = get_backend(name)
        kernel = be.rates_kernel(rate_tables(mech))
        rng = _rng(4)
        n = mech.n_species
        T = rng.uniform(1200.0, 1800.0, 3)
        C = rng.uniform(0.05, 1.0, (n, 3, n))  # stacked perturbed copies
        kf, kr = kernel.rate_constants(T)
        got = kernel.wdot(kf, kr, C)
        assert got.shape == (n, 3, n)
        ref_kernel = REF.rates_kernel(rate_tables(mech))
        want = ref_kernel.wdot(kf, kr, C)
        scale = np.abs(want).max() + 1e-300
        assert np.abs(got - want).max() / scale < 1e-12


# ---------------------------------------------------------------------------
# popcount tally parity (integer exact)
# ---------------------------------------------------------------------------


def _reference_tallies_2way(words: np.ndarray) -> np.ndarray:
    """The original per-state-pair sweep, kept as the semantic anchor."""
    n, S, _ = words.shape
    counts = np.empty((S, S, n, n), dtype=np.int64)
    for s in range(S):
        for t in range(S):
            counts[s, t] = popcount_words(
                words[:, s, None, :] & words[None, :, t, :]
            ).sum(axis=-1, dtype=np.int64)
    return counts


@pytest.mark.parametrize("name", BACKENDS)
class TestTallyParity:
    def test_2way_exact_on_random_data(self, name):
        from repro.similarity.gemmtally import pack_alleles

        be = get_backend(name)
        rng = _rng(11)
        data = rng.integers(0, 3, size=(9, 130))  # 3 states, 3 words
        packed = pack_alleles(data, n_states=3)
        got = be.popcount_tallies_2way(packed.words)
        assert got.dtype == np.int64
        np.testing.assert_array_equal(got,
                                      _reference_tallies_2way(packed.words))

    def test_2way_all_missing_column(self, name):
        """Vectors whose fields all fall outside [0, n_states) tally zero."""
        from repro.similarity.gemmtally import pack_alleles

        be = get_backend(name)
        rng = _rng(12)
        data = rng.integers(0, 2, size=(6, 70))
        data[2, :] = 9  # entirely missing vector: no state plane bits
        packed = pack_alleles(data, n_states=2)
        counts = be.popcount_tallies_2way(packed.words)
        assert (counts[:, :, 2, :] == 0).all()
        assert (counts[:, :, :, 2] == 0).all()

    def test_2way_constant_column(self, name):
        """A constant vector pairs its full field count with itself."""
        from repro.similarity.gemmtally import pack_alleles

        be = get_backend(name)
        m = 97
        data = np.zeros((4, m), dtype=np.int64)
        data[1, :] = 1
        packed = pack_alleles(data, n_states=2)
        counts = be.popcount_tallies_2way(packed.words)
        assert counts[0, 0, 0, 0] == m       # all-zero vs itself in state 0
        assert counts[1, 1, 1, 1] == m       # all-one vs itself in state 1
        assert counts[0, 1, 0, 1] == m       # cross-state pairing
        assert counts[1, 0, 0, 0] == 0       # vector 0 never in state 1
        np.testing.assert_array_equal(counts,
                                      _reference_tallies_2way(packed.words))

    def test_3way_exact_on_random_data(self, name):
        from repro.similarity.gemmtally import (
            einsum_tallies_3way,
            pack_alleles,
        )

        be = get_backend(name)
        rng = _rng(13)
        data = rng.integers(0, 2, size=(5, 80))
        packed = pack_alleles(data, n_states=2)
        got = be.popcount_tallies_3way(packed.words)
        np.testing.assert_array_equal(got, einsum_tallies_3way(data))

    def test_2way_word_block_chunking(self, name):
        """Wide word planes (forcing the sweep to chunk) stay exact."""
        from repro.similarity.gemmtally import pack_alleles

        import repro.backend.numpy_backend as nb

        be = get_backend(name)
        rng = _rng(14)
        data = rng.integers(0, 2, size=(8, 64 * 7 + 3))
        packed = pack_alleles(data, n_states=2)
        want = _reference_tallies_2way(packed.words)
        original = nb._SWEEP_BUDGET
        try:
            nb._SWEEP_BUDGET = 64  # force many word blocks
            got = be.popcount_tallies_2way(packed.words)
        finally:
            nb._SWEEP_BUDGET = original
        np.testing.assert_array_equal(got, want)


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(1, 7),
    m=st.integers(1, 150),
    n_states=st.integers(2, 3),
    seed=st.integers(0, 2**31 - 1),
)
def test_tally_2way_parity_property(n, m, n_states, seed):
    from repro.similarity.gemmtally import einsum_tallies_2way, pack_alleles

    rng = _rng(seed)
    # include out-of-range values: missing fields must stay excluded
    data = rng.integers(0, n_states + 1, size=(n, m))
    packed = pack_alleles(data, n_states=n_states)
    want = einsum_tallies_2way(data, n_states=n_states)
    for name in BACKENDS:
        got = get_backend(name).popcount_tallies_2way(packed.words)
        np.testing.assert_array_equal(got, want, err_msg=name)


# ---------------------------------------------------------------------------
# pairwise forces parity
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", BACKENDS)
class TestForcesParity:
    def test_short_range_matches_naive_loop(self, name):
        from repro.particles.pm import short_range_forces

        rng = _rng(15)
        box, rs = 10.0, 0.8
        x = rng.uniform(0, box, (20, 3))
        masses = rng.uniform(0.5, 2.0, 20)
        want = short_range_forces(x, masses, box, rs=rs, vectorized=False)
        got = get_backend(name).pairwise_forces(
            x, masses, G=1.0, rs=rs, cutoff=5.0 * rs, box_size=box)
        scale = np.abs(want).max() + 1e-300
        assert np.abs(got - want).max() / scale < 1e-9

    def test_direct_matches_naive_loop(self, name):
        from repro.particles.pm import direct_forces

        rng = _rng(16)
        x = rng.uniform(0, 4.0, (15, 3))
        masses = rng.uniform(0.5, 2.0, 15)
        want = direct_forces(x, masses, vectorized=False)
        got = get_backend(name).pairwise_forces(x, masses, G=1.0)
        scale = np.abs(want).max() + 1e-300
        assert np.abs(got - want).max() / scale < 1e-9

    def test_forces_edge_cases(self, name):
        be = get_backend(name)
        x1 = np.array([[1.0, 2.0, 3.0]])
        m1 = np.array([1.0])
        assert np.array_equal(be.pairwise_forces(x1, m1, G=1.0),
                              np.zeros((1, 3)))
        # coincident particles are dropped, not divided by zero
        x2 = np.array([[0.0, 0.0, 0.0], [0.0, 0.0, 0.0]])
        m2 = np.ones(2)
        got = be.pairwise_forces(x2, m2, G=1.0, rs=0.5, cutoff=2.0,
                                 box_size=5.0)
        assert np.isfinite(got).all()
        assert np.array_equal(got, np.zeros((2, 3)))

    def test_newtons_third_law(self, name):
        rng = _rng(17)
        x = rng.uniform(0, 6.0, (12, 3))
        masses = rng.uniform(0.5, 2.0, 12)
        got = get_backend(name).pairwise_forces(
            x, masses, G=1.0, rs=0.9, cutoff=4.5, box_size=6.0)
        assert np.abs(got.sum(axis=0)).max() < 1e-10


# ---------------------------------------------------------------------------
# end-to-end: integration parity and checkpoint/restore across backends
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("name", BACKENDS)
class TestIntegrationAcrossBackends:
    def test_chemistry_integration_matches_reference(self, name):
        from repro.apps.pele import (
            PeleConfig,
            chemistry_field,
            integrate_chemistry_batched,
        )

        cfg = PeleConfig(mechanism=h2_o2_mechanism())
        T, C0 = chemistry_field(cfg, 6, seed=1)
        ref = integrate_chemistry_batched(cfg, T, C0, 1e-7, backend="numpy")
        got = integrate_chemistry_batched(cfg, T, C0, 1e-7, backend=name)
        scale = np.abs(ref.y).max() + 1e-300
        assert np.abs(got.y - ref.y).max() / scale < 1e-6

    def test_mid_integration_checkpoint_restore(self, name):
        """Pause/snapshot/restore under a non-default backend is exact."""
        from repro.apps.pele import PeleConfig, chemistry_field
        from repro.chem.codegen import compile_batched_kernels
        from repro.ode import BatchedBdfIntegrator

        cfg = PeleConfig(mechanism=h2_o2_mechanism())
        T, C0 = chemistry_field(cfg, 5, seed=2)
        kernels = compile_batched_kernels(cfg.mechanism)
        be = get_backend(name)
        kernel = be.rates_kernel(rate_tables(cfg.mechanism))
        kf, kr = kernel.rate_constants(T)

        def rhs(t, conc):
            return kernel.wdot(kf, kr, np.maximum(conc, 0.0))

        def jac(t, conc):
            return kernels.jacobian(T, np.maximum(conc, 0.0))

        def integrator():
            return BatchedBdfIntegrator(rhs, jac=jac, backend=be)

        base = integrator()
        uninterrupted = integrator()
        state = base.start(C0, 0.0, 1e-7)
        ref_state = uninterrupted.start(C0, 0.0, 1e-7)
        for _ in range(4):
            base.step_round(state)
        snap = state.snapshot()

        resumed = integrator().start(C0, 0.0, 1e-7)
        resumed_state = resumed  # BatchedBdfState
        resumed_state.restore(snap)
        # the held Newton caches (J/lu/inv) travel with the snapshot
        np.testing.assert_array_equal(resumed_state.inv, state.inv)

        cont = integrator()
        while not resumed_state.finished:
            cont.step_round(resumed_state)
        while not ref_state.finished:
            uninterrupted.step_round(ref_state)
        np.testing.assert_array_equal(resumed_state.Y, ref_state.Y)
        np.testing.assert_array_equal(resumed_state.t, ref_state.t)

    def test_snapshot_version_guard(self, name):
        """v1 snapshots (no held inverse) are refused, not misread."""
        from repro.resilience.snapshot import SnapshotError

        from repro.chem.mechanism import h2_o2_mechanism as mech_fn
        from repro.apps.pele import PeleConfig, chemistry_field
        from repro.ode import BatchedBdfIntegrator

        cfg = PeleConfig(mechanism=mech_fn())
        T, C0 = chemistry_field(cfg, 3, seed=3)
        be = get_backend(name)
        kernel = be.rates_kernel(rate_tables(cfg.mechanism))
        kf, kr = kernel.rate_constants(T)
        integ = BatchedBdfIntegrator(
            lambda t, conc: kernel.wdot(kf, kr, np.maximum(conc, 0.0)),
            backend=be)
        state = integ.start(C0, 0.0, 1e-8)
        snap = state.snapshot()
        stale = type(snap)(kind=snap.kind, version=1, payload=snap.payload)
        with pytest.raises(SnapshotError):
            state.restore(stale)
