"""Build-system story tests + cross-cutting performance-model properties."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import gests
from repro.gpu import KernelSpec, fission, fuse, time_kernel, time_kernel_sequence
from repro.gpu.occupancy import compute_occupancy
from repro.hardware.gpu import MI250X_GCD, V100, Precision
from repro.progmodel import (
    CRUSHER_ROCM,
    EARLY_ROCM,
    BuildError,
    CompilationUnit,
    Model,
    build,
    split_unit,
)


class TestBuildSystem:
    HACC_UNIT = CompilationUnit(
        name="hacc_gravity",
        models=frozenset({Model.HIP, Model.OPENMP_OFFLOAD}),
    )

    def test_early_toolchain_rejects_mixed_unit_with_guideline_message(self):
        """§3.4: 'early compiler offerings didn't offer full support for
        both HIP and OpenMP in the same compilation unit'."""
        with pytest.raises(BuildError, match="link time"):
            build([self.HACC_UNIT], EARLY_ROCM)

    def test_codesign_guideline_splits_and_builds(self):
        result = build([self.HACC_UNIT], EARLY_ROCM, apply_guideline=True)
        assert result.split_applied
        names = [u.name for u in result.units]
        assert "hacc_gravity_hip" in names and "hacc_gravity_omp" in names
        models = [u.models for u in result.units]
        assert all(
            not ({Model.HIP, Model.OPENMP_OFFLOAD} <= m) for m in models
        )

    def test_later_toolchain_builds_mixed_units_natively(self):
        result = build([self.HACC_UNIT], CRUSHER_ROCM)
        assert not result.split_applied
        assert len(result.units) == 1

    def test_pure_units_always_build(self):
        pure = CompilationUnit(name="solver", models=frozenset({Model.HIP}))
        assert build([pure], EARLY_ROCM).ok

    def test_split_preserves_other_models(self):
        unit = CompilationUnit(
            name="u",
            models=frozenset({Model.HIP, Model.OPENMP_OFFLOAD, Model.OPENMP_HOST}),
        )
        parts = split_unit(unit)
        assert all(Model.OPENMP_HOST in p.models for p in parts)

    def test_validation(self):
        with pytest.raises(ValueError):
            CompilationUnit(name="empty", models=frozenset())
        with pytest.raises(ValueError):
            build([], EARLY_ROCM)


class TestGestsOpenmpManagement:
    def test_openmp_management_overhead_is_small(self):
        """§3.3: limiting vendor code to the FFTs cost almost nothing."""
        ratio = gests.openmp_management_overhead()
        assert 1.0 <= ratio < 1.1


def kern(flops=1e9, bytes_read=1e8, **kw):
    base = dict(name="k", flops=flops, bytes_read=bytes_read)
    base.update(kw)
    return KernelSpec(**base)


class TestPerfModelProperties:
    @settings(max_examples=30, deadline=None)
    @given(st.floats(min_value=1e6, max_value=1e13),
           st.floats(min_value=1e5, max_value=1e11))
    def test_time_monotone_in_both_axes(self, flops, nbytes):
        t = time_kernel(kern(flops=flops, bytes_read=nbytes), MI250X_GCD)
        t_more_flops = time_kernel(
            kern(flops=2 * flops, bytes_read=nbytes), MI250X_GCD)
        t_more_bytes = time_kernel(
            kern(flops=flops, bytes_read=2 * nbytes), MI250X_GCD)
        assert t_more_flops.total_time >= t.total_time
        assert t_more_bytes.total_time >= t.total_time

    @settings(max_examples=30, deadline=None)
    @given(st.floats(min_value=0.02, max_value=1.0))
    def test_divergence_never_speeds_up(self, lanes):
        full = time_kernel(kern(flops=1e11), V100).total_time
        div = time_kernel(
            kern(flops=1e11, active_lane_fraction=lanes), V100).total_time
        assert div >= full - 1e-12

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=2, max_value=8))
    def test_fusion_beats_separate_launches_for_tiny_kernels(self, count):
        tiny = [kern(flops=1e5, bytes_read=1e5, name=f"t{i}")
                for i in range(count)]
        separate = time_kernel_sequence(tiny, V100, same_stream_async=False)
        fused = time_kernel(fuse(tiny), V100).total_time
        assert fused < separate

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=257, max_value=500),
           st.integers(min_value=2, max_value=6))
    def test_fission_always_removes_spills_eventually(self, regs, parts):
        k = kern(registers_per_thread=regs)
        pieces = fission(k, parts)
        # enough parts must stop the spilling (paper: 'fissioned into
        # multiple kernels until register spillage did not occur')
        for depth in range(1, 6):
            pieces = fission(k, parts * depth)
            if not any(compute_occupancy(p, MI250X_GCD).spills for p in pieces):
                return
        pytest.fail("fission never removed spills")

    @settings(max_examples=20, deadline=None)
    @given(st.sampled_from([Precision.FP64, Precision.FP32, Precision.FP16]))
    def test_flops_conserved_by_fission(self, precision):
        k = kern(flops=3e9, precision=precision)
        pieces = fission(k, 3)
        assert sum(p.flops for p in pieces) == pytest.approx(k.flops)

    def test_mi250x_never_slower_than_v100_for_clean_streaming(self):
        """A full-occupancy streaming kernel tracks the bandwidth ratio."""
        k = kern(flops=1e6, bytes_read=1e10, registers_per_thread=32)
        tv = time_kernel(k, V100).total_time
        tm = time_kernel(k, MI250X_GCD).total_time
        assert tv / tm == pytest.approx(
            MI250X_GCD.effective_bandwidth / V100.effective_bandwidth, rel=0.1
        )
