"""Tests for the chemistry substrates: RI-MP2, MBE fragments, kinetics, codegen."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.chem import (
    analytic_jacobian,
    chemistry_rhs,
    compile_rates,
    distribute_fragments,
    drm19_like_mechanism,
    estimate_registers,
    fragment_scaling_efficiency,
    generate_rates_source,
    generated_lines_for_jacobian,
    h2_o2_mechanism,
    jacobian_flop_count,
    make_fragment,
    mbe_energy,
    numerical_jacobian,
    production_rates,
    rates_flop_count,
    rimp2_energy,
    rimp2_energy_reference,
    rimp2_flops,
    supersystem_energy,
    water_cluster,
)
from repro.chem.mechanism import Mechanism, Reaction


class TestRimp2:
    def test_gemm_path_matches_einsum(self):
        frag = make_fragment(5, 10, 30, seed=0)
        assert rimp2_energy(frag) == pytest.approx(rimp2_energy_reference(frag), rel=1e-12)

    def test_correlation_energy_is_negative(self):
        """MP2 correlation lowers the energy for a gapped reference."""
        for seed in range(5):
            frag = make_fragment(4, 8, 24, seed=seed)
            assert rimp2_energy(frag) < 0.0

    def test_dimensions_validated(self):
        with pytest.raises(ValueError):
            make_fragment(0, 8, 24)

    def test_flops_model(self):
        assert rimp2_flops(4, 10, 20) == 2.0 * 16 * 100 * 20

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=2, max_value=6), st.integers(min_value=4, max_value=10))
    def test_property_gemm_vs_einsum(self, nocc, nvirt):
        frag = make_fragment(nocc, nvirt, 16, seed=nocc * nvirt)
        assert rimp2_energy(frag) == pytest.approx(rimp2_energy_reference(frag), rel=1e-10)


class TestFragments:
    def test_mbe_exact_for_additive_potential(self):
        """Untruncated 2-body MBE must equal the supersystem energy."""
        frags = water_cluster(10, seed=0)
        r = mbe_energy(frags)
        assert r.energy == pytest.approx(supersystem_energy(frags), rel=1e-12)
        assert r.pairs_skipped == 0

    def test_cutoff_introduces_small_error_and_skips_pairs(self):
        frags = water_cluster(12, seed=1)
        full = mbe_energy(frags)
        truncated = mbe_energy(frags, cutoff=4.5)
        assert truncated.pairs_skipped > 0
        assert truncated.pairs_computed < full.pairs_computed
        # distant fragments interact weakly: error must be small
        assert abs(truncated.energy - full.energy) < 0.05 * abs(full.energy)

    def test_cluster_has_requested_size(self):
        frags = water_cluster(935, seed=2)  # the paper's water demo size
        assert len(frags) == 935
        assert all(f.natoms == 3 for f in frags)

    def test_independent_task_count(self):
        frags = water_cluster(8, seed=3)
        r = mbe_energy(frags)
        assert r.n_independent_tasks == 8 + 8 * 7 // 2

    def test_distribution_round_robin(self):
        buckets = distribute_fragments(10, 3)
        assert sorted(sum(buckets, [])) == list(range(10))
        assert max(len(b) for b in buckets) - min(len(b) for b in buckets) <= 1

    def test_scaling_efficiency_near_ideal_when_tasks_dominate(self):
        """GAMESS's near-ideal linear scaling: tasks >> ranks."""
        eff = fragment_scaling_efficiency(437_580, 2048)  # 935-water pair count
        assert eff > 0.99

    def test_scaling_efficiency_degrades_when_ranks_exceed_tasks(self):
        assert fragment_scaling_efficiency(10, 64) < 0.2

    def test_validation(self):
        with pytest.raises(ValueError):
            water_cluster(0)
        with pytest.raises(ValueError):
            distribute_fragments(5, 0)


class TestKinetics:
    @pytest.fixture(scope="class")
    def state(self):
        mech = h2_o2_mechanism()
        rng = np.random.default_rng(0)
        return mech, 1200.0, rng.uniform(0.1, 1.0, mech.n_species)

    def test_mass_conservation_structure(self, state):
        mech, _, _ = state
        # every reaction's stoichiometry must balance species counts under
        # the elemental composition implicit in the mechanism
        net = mech.conserved_atoms()
        assert net.shape == (mech.n_reactions, mech.n_species)

    def test_analytic_jacobian_matches_numerical(self, state):
        mech, T, conc = state
        ja = analytic_jacobian(mech, T, conc)
        jn = numerical_jacobian(mech, T, conc)
        np.testing.assert_allclose(ja, jn, rtol=1e-4, atol=1e-6 * np.abs(jn).max())

    def test_drm19_like_jacobian(self):
        mech = drm19_like_mechanism()
        rng = np.random.default_rng(1)
        conc = rng.uniform(0.1, 1.0, mech.n_species)
        ja = analytic_jacobian(mech, 1500.0, conc)
        jn = numerical_jacobian(mech, 1500.0, conc)
        np.testing.assert_allclose(ja, jn, rtol=1e-3, atol=1e-5 * np.abs(jn).max())

    def test_equilibrium_has_zero_rates(self):
        """A single reversible reaction at detailed balance."""
        mech = Mechanism(
            name="toy",
            species=("A", "B"),
            reactions=(Reaction({0: 1}, {1: 1}, A=2.0, reverse_A=1.0),),
        )
        # kf·[A] = kr·[B] at T where kf=2, kr=1: [A]=1, [B]=2
        w = production_rates(mech, 300.0, np.array([1.0, 2.0]))
        np.testing.assert_allclose(w, 0.0, atol=1e-12)

    def test_rhs_wrapper_clips_negative(self, state):
        mech, T, _ = state
        rhs = chemistry_rhs(mech, T)
        out = rhs(0.0, -np.ones(mech.n_species))
        assert np.all(np.isfinite(out))

    def test_flop_counts_positive_and_ordered(self):
        small, big = h2_o2_mechanism(), drm19_like_mechanism()
        assert rates_flop_count(big) > rates_flop_count(small) > 0
        assert jacobian_flop_count(big) > jacobian_flop_count(small)

    def test_bad_reaction_rejected(self):
        with pytest.raises(ValueError):
            Mechanism(name="bad", species=("A",),
                      reactions=(Reaction({0: 1}, {5: 1}, A=1.0),))

    def test_concentration_shape_validated(self, state):
        mech, T, _ = state
        with pytest.raises(ValueError):
            production_rates(mech, T, np.zeros(3))


class TestCodegen:
    def test_generated_matches_interpreted(self):
        mech = h2_o2_mechanism()
        gk = compile_rates(mech)
        rng = np.random.default_rng(2)
        for _ in range(5):
            T = rng.uniform(600, 2500)
            conc = rng.uniform(0.01, 2.0, mech.n_species)
            np.testing.assert_allclose(
                gk.fn(T, conc), production_rates(mech, T, conc), rtol=1e-12
            )

    def test_generated_matches_for_drm19_like(self):
        mech = drm19_like_mechanism()
        gk = compile_rates(mech)
        rng = np.random.default_rng(3)
        conc = rng.uniform(0.01, 1.0, mech.n_species)
        np.testing.assert_allclose(
            gk.fn(1400.0, conc), production_rates(mech, 1400.0, conc), rtol=1e-12
        )

    def test_source_is_unrolled(self):
        src = generate_rates_source(h2_o2_mechanism())
        assert "for " not in src  # fully unrolled, no loops
        assert "reaction 5" in src

    def test_line_count_scales_with_mechanism(self):
        small = compile_rates(h2_o2_mechanism())
        big = compile_rates(drm19_like_mechanism())
        assert big.n_lines > 5 * small.n_lines

    def test_register_estimate_reaches_paper_scale(self):
        """§3.8: large kernels 'use upwards of 18k registers'.

        A detailed-mechanism-sized input (e.g. 1000+ reactions) must push
        the estimate to that order.
        """
        rng = np.random.default_rng(4)
        reactions = tuple(
            Reaction({int(rng.integers(0, 50)): 1}, {int(rng.integers(50, 100)): 1},
                     A=1e5)
            for _ in range(6000)
        )
        mech = Mechanism(name="detailed", species=tuple(f"S{i}" for i in range(100)),
                         reactions=reactions)
        assert estimate_registers(mech) > 18_000

    def test_jacobian_line_estimate_scales(self):
        assert generated_lines_for_jacobian(drm19_like_mechanism()) > \
            generated_lines_for_jacobian(h2_o2_mechanism())

    def test_chemistry_integrates_with_bdf(self):
        """End-to-end: generated rates + CVODE-like integrator (§3.8)."""
        from repro.ode import BdfIntegrator

        mech = h2_o2_mechanism()
        gk = compile_rates(mech)
        T = 1500.0
        c0 = np.array([1.0, 0.5, 0.0, 0.0, 0.0, 0.0])
        integ = BdfIntegrator(
            lambda t, c: gk.fn(T, np.maximum(c, 0.0)),
            jac=lambda t, c: analytic_jacobian(mech, T, np.maximum(c, 0.0)),
            rtol=1e-5, atol=1e-9,
        )
        res = integ.integrate(c0, 0.0, 1e-3)
        assert np.all(res.y > -1e-8)
        assert res.stats.steps > 0
        # radicals must have formed
        assert res.y[3:].sum() > 1e-8
