"""Tests for the readiness framework: FOMs, challenges, timeline, lessons."""

import pytest

from repro.core import (
    AccelerationPlan,
    ApplicationRecord,
    ApplicationRegistry,
    ChallengeProblem,
    ChallengeTracker,
    Channel,
    EarlyAccessCampaign,
    FigureOfMerit,
    FomKind,
    FomTracker,
    KnowledgeBase,
    Lesson,
    PortingMotif,
    ReadinessPhase,
    ReviewVerdict,
    build_default_registry,
    convergence_to_frontier,
    early_access_generations,
    measure_speedup,
    render_bar,
    render_series,
    render_table,
    seed_paper_lessons,
    within_band,
)
from repro.hardware import CRUSHER, FRONTIER, POPLAR, SPOCK, SUMMIT


def make_fom(**kw) -> FigureOfMerit:
    base = dict(name="fom", kind=FomKind.THROUGHPUT, reference_value=100.0,
                target_factor=4.0)
    base.update(kw)
    return FigureOfMerit(**base)


class TestFom:
    def test_target_value(self):
        fom = make_fom()
        assert fom.target_value == 400.0
        assert fom.achieved_factor(250.0) == 2.5
        assert not fom.meets_target(399.0)
        assert fom.meets_target(400.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            make_fom(reference_value=0.0)
        with pytest.raises(ValueError):
            make_fom(target_factor=-1.0)

    def test_tracker_records_and_reports(self):
        t = FomTracker(fom=make_fom())
        t.record("Spock", 150.0)
        t.record("Crusher", 380.0)
        assert t.best == 380.0
        assert "3.80x" in t.status()

    def test_regression_detection(self):
        """§6: 'early detection of ... performance regressions'."""
        t = FomTracker(fom=make_fom())
        t.record("Crusher", 300.0, label="rocm-5.1")
        t.record("Crusher", 240.0, label="rocm-5.2")  # a 20% drop
        regs = t.regressions()
        assert len(regs) == 1
        assert regs[0][0].label == "rocm-5.2"
        assert regs[0][1] == pytest.approx(0.2)

    def test_small_fluctuation_not_regression(self):
        t = FomTracker(fom=make_fom())
        t.record("Crusher", 300.0)
        t.record("Crusher", 295.0)
        assert not t.regressions()

    def test_invalid_measurement(self):
        t = FomTracker(fom=make_fom())
        with pytest.raises(ValueError):
            t.record("X", -1.0)


class TestChallenge:
    def _tracker(self) -> ChallengeTracker:
        fom = make_fom()
        problem = ChallengeProblem(application="GESTS", description="DNS",
                                   fom=fom, workload="32768^3")
        plan = AccelerationPlan(application="GESTS",
                                milestones=("port", "tune", "scale"))
        return ChallengeTracker(problem=problem, plan=plan)

    def test_plan_progress(self):
        t = self._tracker()
        assert t.plan_progress == 0.0
        t.complete_milestone(0)
        assert t.plan_progress == pytest.approx(1 / 3)
        with pytest.raises(ValueError):
            t.complete_milestone(5)

    def test_review_verdicts(self):
        t = self._tracker()
        assert t.review() is ReviewVerdict.OFF_TRACK  # nothing measured
        t.tracker.record("Crusher", 500.0)  # target met
        assert t.review() is ReviewVerdict.ON_TRACK

    def test_review_at_risk_on_regression(self):
        t = self._tracker()
        t.tracker.record("Crusher", 300.0)
        t.tracker.record("Crusher", 150.0)
        assert t.review() is ReviewVerdict.AT_RISK

    def test_reports(self):
        t = self._tracker()
        t.tracker.record("Crusher", 200.0)
        rep = t.file_report("mid-project", notes="on plan")
        assert rep.achieved_factor == 2.0
        with pytest.raises(ValueError):
            t.file_report("quarterly")

    def test_mismatched_plan_rejected(self):
        fom = make_fom()
        problem = ChallengeProblem(application="A", description="", fom=fom)
        plan = AccelerationPlan(application="B", milestones=("x",))
        with pytest.raises(ValueError):
            ChallengeTracker(problem=problem, plan=plan)


class TestRegistry:
    def test_default_registry_has_ten_apps(self):
        assert len(build_default_registry()) == 10

    def test_duplicate_rejected(self):
        reg = ApplicationRegistry()
        rec = ApplicationRecord(name="X", domain="d", program="CAAR",
                                motifs=frozenset(), programming_models=())
        reg.register(rec)
        with pytest.raises(ValueError):
            reg.register(rec)

    def test_unknown_program_rejected(self):
        with pytest.raises(ValueError):
            ApplicationRecord(name="X", domain="d", program="LDRD",
                              motifs=frozenset(), programming_models=())

    def test_motif_query(self):
        reg = build_default_registry()
        fusion = reg.applications_for_motif(PortingMotif.KERNEL_FUSION_FISSION)
        assert sorted(fusion) == ["E3SM", "LAMMPS", "Pele"]

    def test_get_unknown(self):
        with pytest.raises(KeyError):
            build_default_registry().get("Cholla")


class TestSpeedupHarness:
    def test_measure(self):
        m = measure_speedup("X", lambda: 10.0, lambda: 2.0, basis="per GPU")
        assert m.speedup == 5.0

    def test_validation(self):
        with pytest.raises(ValueError):
            measure_speedup("X", lambda: -1.0, lambda: 2.0)

    def test_band(self):
        assert within_band(5.0, 5.0)
        assert within_band(4.0, 5.0)
        assert not within_band(2.0, 5.0)
        with pytest.raises(ValueError):
            within_band(1.0, 0.0)


class TestTimeline:
    def test_phase_progression(self):
        """Issues resolve functionality -> features -> performance (§6)."""
        c = EarlyAccessCampaign(application="HACC")
        c.file_issue("Poplar", ReadinessPhase.FUNCTIONALITY, "won't link HIP+OpenMP")
        c.file_issue("Spock", ReadinessPhase.PERFORMANCE, "gravity kernel slow")
        assert c.current_phase() is ReadinessPhase.FUNCTIONALITY
        c.resolve(0)
        assert c.current_phase() is ReadinessPhase.PERFORMANCE
        c.resolve(1)
        assert c.current_phase() is ReadinessPhase.PERFORMANCE
        assert not c.open_issues()

    def test_histogram(self):
        c = EarlyAccessCampaign(application="X")
        c.file_issue("Spock", ReadinessPhase.MISSING_FEATURES, "no DETACH")
        h = c.phase_histogram()
        assert h[ReadinessPhase.MISSING_FEATURES] == 1

    def test_resolve_invalid(self):
        with pytest.raises(ValueError):
            EarlyAccessCampaign(application="X").resolve(0)

    def test_generations_ordered(self):
        gens = early_access_generations()
        assert [g for g, _ in gens] == [1, 2, 3]
        assert "Crusher" in gens[-1][1]

    def test_convergence_scores_increase_toward_frontier(self):
        """§4: platforms 'converge on the target exascale platform'."""
        s_poplar = convergence_to_frontier(POPLAR, FRONTIER)
        s_spock = convergence_to_frontier(SPOCK, FRONTIER)
        s_crusher = convergence_to_frontier(CRUSHER, FRONTIER)
        assert s_poplar < s_spock < s_crusher
        assert s_crusher == pytest.approx(1.0)
        assert convergence_to_frontier(SUMMIT, FRONTIER) < s_poplar


class TestLessons:
    def test_seeded_lessons(self):
        kb = seed_paper_lessons()
        assert len(kb.lessons) == 7

    def test_dissemination_pipeline(self):
        """Hackathon -> webinar -> user guide (§5)."""
        kb = KnowledgeBase()
        lid = kb.add(Lesson(topic="atomics", issue="slow atomics",
                            mitigation="use LDS reductions",
                            source_application="CoMet"))
        assert not kb.in_user_guide()
        kb.disseminate(lid, Channel.WEBINAR)
        kb.disseminate(lid, Channel.USER_GUIDE)
        assert len(kb.in_user_guide()) == 1
        assert kb.triage_savings(teams_that_would_hit_it=4) == 3

    def test_duplicate_detection(self):
        kb = KnowledgeBase()
        kb.add(Lesson("spills", "a", "b", "LAMMPS"))
        kb.add(Lesson("spills", "c", "d", "Pele"))
        assert len(kb.duplicates_of("spills")) == 2

    def test_unknown_lesson(self):
        with pytest.raises(KeyError):
            KnowledgeBase().disseminate(3, Channel.WEBINAR)


class TestReport:
    def test_table_alignment(self):
        out = render_table(("A", "Bee"), [("x", 1), ("yy", 22)])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all("|" in l for l in (lines[0], lines[2], lines[3]))

    def test_series(self):
        out = render_series("s", [("a", 1.0), ("b", 2.0)])
        assert out.startswith("# s")
        assert "2" in out

    def test_bar_clamps(self):
        assert render_bar("x", 2.0, scale=1.0, width=10).count("#") == 10
        assert render_bar("x", -1.0).count("#") == 0
