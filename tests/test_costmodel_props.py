"""Property suite for the collective cost models.

Every collective time function must be non-negative and monotone
non-decreasing in both the rank count and the message size — the axioms
the representative-rank engine leans on when it evaluates the models at
full machine scale — and the variable-size alltoall must collapse to the
uniform one when every pair carries the same bytes.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware.interconnect import IB_EDR_DUAL, SLINGSHOT_11
from repro.mpisim import (
    allgather_time,
    allreduce_time,
    alltoall_time,
    alltoallv_time,
    barrier_time,
    bcast_time,
    link_parameters,
    reduce_scatter_time,
    reduce_time,
)

COLLECTIVES = (bcast_time, reduce_time, allreduce_time, allgather_time,
               alltoall_time, reduce_scatter_time)

links = st.sampled_from([
    link_parameters(SLINGSHOT_11),
    link_parameters(SLINGSHOT_11, ranks_sharing_nic=2, device_buffers=True),
    link_parameters(IB_EDR_DUAL),
])
ranks = st.integers(min_value=1, max_value=100_000)
sizes = st.floats(min_value=0.0, max_value=1e12,
                  allow_nan=False, allow_infinity=False)


@pytest.mark.parametrize("fn", COLLECTIVES, ids=lambda f: f.__name__)
class TestCollectiveAxioms:
    @given(p=ranks, n=sizes, link=links)
    @settings(max_examples=50)
    def test_non_negative(self, fn, p, n, link):
        assert fn(p, n, link) >= 0.0

    @given(p=ranks, dp=st.integers(min_value=0, max_value=100_000),
           n=sizes, link=links)
    @settings(max_examples=50)
    def test_monotone_in_ranks(self, fn, p, dp, n, link):
        assert fn(p, n, link) <= fn(p + dp, n, link) * (1 + 1e-12)

    @given(p=ranks, n=sizes,
           dn=st.floats(min_value=0.0, max_value=1e12,
                        allow_nan=False, allow_infinity=False),
           link=links)
    @settings(max_examples=50)
    def test_monotone_in_bytes(self, fn, p, n, dn, link):
        assert fn(p, n, link) <= fn(p, n + dn, link) * (1 + 1e-12)

    @given(n=sizes, link=links)
    @settings(max_examples=20)
    def test_single_rank_is_free(self, fn, n, link):
        assert fn(1, n, link) == 0.0


class TestBarrierAxioms:
    @given(p=ranks, dp=st.integers(min_value=0, max_value=100_000),
           link=links)
    @settings(max_examples=50)
    def test_non_negative_and_monotone(self, p, dp, link):
        assert barrier_time(p, link) >= 0.0
        assert barrier_time(p, link) <= barrier_time(p + dp, link)


class TestAlltoallvUniform:
    @given(p=st.integers(min_value=1, max_value=32),
           n=st.floats(min_value=0.0, max_value=1e9,
                       allow_nan=False, allow_infinity=False),
           link=links)
    @settings(max_examples=50)
    def test_uniform_matches_alltoall(self, p, n, link):
        uniform = [[n] * p for _ in range(p)]
        assert alltoallv_time(uniform, link) == pytest.approx(
            alltoall_time(p, n, link), rel=1e-12, abs=0.0)

    @given(p=st.integers(min_value=2, max_value=16), link=links)
    @settings(max_examples=25)
    def test_skew_gates_on_largest_pair(self, p, link):
        """One fat pair makes every round at least as slow as uniform."""
        skewed = [[8.0] * p for _ in range(p)]
        skewed[0][1] = 1e9
        assert alltoallv_time(skewed, link) >= alltoall_time(p, 8.0, link)
