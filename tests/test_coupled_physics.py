"""Tests for the coupled-physics extensions: reacting flow, turbulence
diagnostics, MMF coupling, communicator splitting."""

import numpy as np
import pytest

from repro.cloud import MmfModel
from repro.hardware.interconnect import SLINGSHOT_11
from repro.hydro import Euler1D, ReactingFlow1D, ignition_demo
from repro.mpisim import SimComm
from repro.spectral import (
    PseudoSpectralNS,
    dissipation_rate,
    energy_spectrum,
    enstrophy,
    taylor_microscale_reynolds,
    total_kinetic_energy,
)


class TestReactingFlow:
    @pytest.fixture(scope="class")
    def burned(self):
        return ignition_demo(48, steps=3)

    def test_hot_pocket_ignites(self, burned):
        """Products form in the hot region only (frozen cold chemistry)."""
        h2o = burned.concentrations[2]
        n = len(h2o)
        assert h2o[n // 2] > 1e-7
        assert h2o[0] == 0.0 and h2o[-1] == 0.0

    def test_atoms_conserved_through_reactions(self):
        """Chemistry redistributes species but conserves H and O atoms.

        Use a closed (zero-velocity) setup so advection cannot move mass
        through the outflow boundaries.
        """
        flow = ignition_demo(32, steps=0)
        a0 = flow.total_atoms()
        # react only (no hydro motion: velocities are zero initially, but
        # the hot pocket creates pressure waves; use the private stage)
        flow._react(1e-5)
        assert flow.total_atoms() == pytest.approx(a0, rel=1e-6)

    def test_heat_release_warms_hot_cells(self):
        flow = ignition_demo(32, steps=0)
        t_before = flow.temperature().max()
        flow._react(2e-4)
        assert flow.temperature().max() > t_before

    def test_positivity(self, burned):
        assert np.all(burned.concentrations >= 0.0)
        assert np.all(burned.hydro.rho > 0.0)

    def test_concentration_shape_validated(self):
        hydro = Euler1D.sod(16)
        with pytest.raises(ValueError):
            ReactingFlow1D(hydro=hydro, concentrations=np.zeros((2, 16)))

    def test_advection_moves_species_with_flow(self):
        """A Sod-driven flow advects a passive species rightward."""
        flow = ReactingFlow1D(hydro=Euler1D.sod(128))
        # place the tracer at the diaphragm, where post-shock flow is +x
        flow.concentrations[0, 60:70] = 1.0
        com_before = np.average(np.arange(128), weights=flow.concentrations[0] + 1e-30)
        for _ in range(20):
            dt = flow.hydro.step(0.5)
            flow._advect_species(dt)
        com_after = np.average(np.arange(128), weights=flow.concentrations[0] + 1e-30)
        assert com_after > com_before  # Sod flow moves rightward


class TestTurbulenceDiagnostics:
    @pytest.fixture(scope="class")
    def ns(self):
        ns = PseudoSpectralNS(16, viscosity=0.02)
        ns.set_taylor_green()
        return ns

    def test_parseval(self, ns):
        _, spec = energy_spectrum(ns)
        assert spec.sum() == pytest.approx(ns.energy(), rel=1e-10)
        assert total_kinetic_energy(ns) == pytest.approx(ns.energy(), rel=1e-10)

    def test_taylor_green_energy_in_single_shell(self, ns):
        """TG initial condition lives at |k| = √3 ≈ 2 shells."""
        k, spec = energy_spectrum(ns)
        dominant = int(np.argmax(spec))
        assert dominant == 2  # round(sqrt(3))
        assert spec[dominant] > 0.99 * spec.sum()

    def test_dissipation_identity(self, ns):
        assert dissipation_rate(ns) == pytest.approx(2 * ns.nu * enstrophy(ns))

    def test_dissipation_matches_energy_decay(self):
        """dE/dt = −ε for decaying turbulence."""
        ns = PseudoSpectralNS(16, viscosity=0.05)
        ns.set_taylor_green()
        dt = 0.002
        e0 = ns.energy()
        eps0 = dissipation_rate(ns)
        ns.step(dt)
        measured = (e0 - ns.energy()) / dt
        assert measured == pytest.approx(eps0, rel=0.05)

    def test_reynolds_number_positive_and_zero_when_quiescent(self, ns):
        assert taylor_microscale_reynolds(ns) > 0
        quiet = PseudoSpectralNS(8, viscosity=0.1)
        assert taylor_microscale_reynolds(quiet) == 0.0


class TestMmf:
    def test_global_integral_conserved(self):
        m = MmfModel.create(8, 32, seed=0)
        g0 = m.global_integral()
        for _ in range(10):
            m.step()
        assert m.global_integral() == pytest.approx(g0, rel=1e-12)

    def test_columns_are_independent(self):
        """E3SM-MMF's parallelism: one column's advance never touches
        another's state."""
        a = MmfModel.create(4, 32, seed=3)
        b = MmfModel.create(4, 32, seed=3)
        a.step()  # all columns
        for i in range(4):
            b.step_column(i)  # one at a time, any order
        np.testing.assert_allclose(a.gcm_state, b.gcm_state, atol=1e-14)

    def test_crm_means_track_gcm(self):
        m = MmfModel.create(5, 32, seed=1)
        m.step()
        for i, crm in enumerate(m.crms):
            assert crm.mean == pytest.approx(m.gcm_state[i], abs=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            MmfModel.create(0)
        m = MmfModel.create(2)
        with pytest.raises(ValueError):
            m.step_column(5)


class TestCommSplit:
    def test_split_row_groups(self):
        comm = SimComm(8, SLINGSHOT_11, ranks_per_node=4)
        subs = comm.split(lambda r: r // 4)
        assert set(subs) == {0, 1}
        assert all(s.nranks == 4 for s in subs.values())

    def test_sub_collectives_work(self):
        comm = SimComm(6, SLINGSHOT_11)
        subs = comm.split(lambda r: r % 2)
        out = subs[0].allreduce([1.0, 2.0, 3.0], nbytes=8)
        assert out == [6.0, 6.0, 6.0]

    def test_clocks_carry_over(self):
        comm = SimComm(4, SLINGSHOT_11)
        comm.advance(2, 7.0)
        subs = comm.split(lambda r: r // 2)
        assert subs[1].clocks[0] == pytest.approx(7.0)
        assert subs[0].clocks.max() == pytest.approx(0.0)
