"""Direct unit tests for the COE readiness dashboard (§6).

The dashboard is the management-facing synthesis of every Table 2
application; these tests pin its structure — one reviewed row per app,
achieved factors taken from the apps' own measured speedups, verdicts
consistent with the targets — independently of the experiment smoke
tests.
"""

import pytest

from repro.apps import TABLE2_APPS
from repro.core.challenge import ReviewVerdict
from repro.experiments.dashboard import (
    TARGET_FACTORS,
    Dashboard,
    DashboardRow,
    build_dashboard,
)


class TestTargets:
    def test_every_table2_app_has_a_committed_target(self):
        assert set(TARGET_FACTORS) == set(TABLE2_APPS)

    def test_targets_are_caar_scale(self):
        assert all(1.0 < f <= 4.0 for f in TARGET_FACTORS.values())


class TestBuildDashboard:
    @pytest.fixture(scope="class")
    def dashboard(self):
        return build_dashboard()

    def test_one_row_per_application(self, dashboard):
        assert [r.application for r in dashboard.rows] == list(TABLE2_APPS)

    def test_achieved_factors_are_the_apps_measured_speedups(self, dashboard):
        for row in dashboard.rows:
            assert row.achieved_factor == pytest.approx(
                TABLE2_APPS[row.application].speedup())
            assert row.target_factor == TARGET_FACTORS[row.application]

    def test_verdicts_follow_the_targets(self, dashboard):
        for row in dashboard.rows:
            if row.verdict is ReviewVerdict.ON_TRACK:
                assert row.achieved_factor >= row.target_factor * 0.9
        assert dashboard.all_on_track == all(
            r.verdict is ReviewVerdict.ON_TRACK for r in dashboard.rows)

    def test_render_lists_every_app_with_factors(self, dashboard):
        text = dashboard.render()
        assert "COE readiness dashboard" in text
        for row in dashboard.rows:
            assert row.application in text
            assert f"{row.target_factor:.1f}x" in text


class TestDashboardShape:
    def test_all_on_track_is_false_with_one_miss(self):
        rows = (
            DashboardRow("A", 4.0, 4.0, ReviewVerdict.ON_TRACK),
            DashboardRow("B", 1.0, 4.0, ReviewVerdict.OFF_TRACK),
        )
        assert not Dashboard(rows=rows).all_on_track

    def test_empty_dashboard_is_vacuously_on_track(self):
        assert Dashboard(rows=()).all_on_track
