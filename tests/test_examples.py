"""Smoke tests: every shipped example runs end to end.

Examples are documentation that executes; these tests keep them honest.
Each main() runs with stdout captured and key output markers asserted.
"""

import importlib
import io
import sys
from contextlib import redirect_stdout
from pathlib import Path


EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, **kwargs) -> str:
    sys.path.insert(0, str(EXAMPLES_DIR))
    try:
        module = importlib.import_module(name)
        buf = io.StringIO()
        with redirect_stdout(buf):
            module.main(**kwargs)
        return buf.getvalue()
    finally:
        sys.path.remove(str(EXAMPLES_DIR))


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart")
        assert "Frontier" in out
        assert "hipMalloc" in out
        assert "7.5x" in out  # the LSMS row

    def test_porting_workflow(self):
        out = run_example("porting_workflow")
        assert "ON TRACK" in out
        assert "Crusher" in out

    def test_apsp_biomedical(self):
        out = run_example("apsp_biomedical")
        assert "results match serial: True" in out
        assert "compound" in out

    def test_combustion_amr(self):
        out = run_example("combustion_amr")
        assert "saved by AMR" in out
        assert "BDF steps" in out
        assert "total improvement" in out

    def test_turbulence_dns(self):
        out = run_example("turbulence_dns")
        assert "matches numpy.fft.fftn: True" in out
        assert "FOM improvement" in out

    def test_genomics_similarity(self):
        out = run_example("genomics_similarity")
        assert "matches brute force = True" in out
        assert "planted duplicate" in out

    def test_performance_tools(self):
        out = run_example("performance_tools")
        assert "SPILLS" in out
        assert "Roofline" in out
        assert "chrome-trace" in out

    def test_readiness_dashboard(self):
        out = run_example("readiness_dashboard")
        assert "on track" in out
        assert "commitments" in out

    def test_combustion_amr_resilient_section(self):
        out = run_example("combustion_amr")
        assert "recoveries" in out
        assert "bit-identical to failure-free run: True" in out

    def test_resilient_campaign(self):
        # --fast keeps this under a few seconds while still asserting the
        # bit-identical recovery and the Daly-curve sweet spot
        out = run_example("resilient_campaign", fast=True)
        assert "checkpoint every" in out  # Young/Daly machine table
        assert "bit-identical to failure-free run: True" in out
        assert "<- W*" in out

    def test_campaign_service(self):
        out = run_example("campaign_service", njobs=40)
        assert "Service SLOs" in out
        assert "fair-share ledger" in out
        assert "spare-pool contention" in out
        # every completed campaign bit-identical to standalone replay
        assert "bit-identity: " in out
