"""End-to-end tests: the experiment harnesses reproduce the paper."""

import pytest

from repro.core.motifs import TABLE1_EXPECTED, PortingMotif
from repro.experiments import (
    ALL_CLAIMS,
    full_report,
    run_figure1,
    run_figure2,
    run_intext,
    run_table1,
    run_table2,
)


class TestFigure1:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure1()

    def test_thirteen_benchmarks(self, result):
        assert len(result.rows) == 13

    def test_means_match_paper(self, result):
        """§2.1: 'Average normalized HIP performance was 99.8% of CUDA
        performance when considering data transfer costs, 99.9% without.'"""
        assert result.mean_with_transfers == pytest.approx(0.998, abs=0.004)
        assert result.mean_kernel_only == pytest.approx(0.999, abs=0.004)

    def test_all_points_in_figure_range(self, result):
        """The figure's Y-axis spans 0.9-1.05; points sit in ~[0.97, 1.02]."""
        for r in result.rows:
            assert 0.96 < r.relative_with_transfers < 1.03
            assert 0.96 < r.relative_kernel_only < 1.03

    def test_deterministic_given_seed(self):
        a, b = run_figure1(seed=7), run_figure1(seed=7)
        assert a.rows == b.rows

    def test_render_contains_means(self, result):
        text = result.render()
        assert "0.998" in text or "mean" in text
        assert "Figure 1" in text
        assert result.table().count("\n") >= 14


class TestTable1:
    def test_matches_paper_exactly(self):
        result = run_table1()
        assert result.matches_paper()
        assert result.mismatches() == {}

    def test_every_motif_has_applications(self):
        rows = run_table1().rows
        for motif in PortingMotif:
            assert rows[motif], motif
            assert len(rows[motif]) == len(TABLE1_EXPECTED[motif])

    def test_render(self):
        text = run_table1().render()
        assert "Kernel Fusion/Fission" in text
        assert "LAMMPS" in text


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table2()

    def test_eight_rows_all_in_band(self, result):
        assert len(result.rows) == 8
        assert result.all_in_band

    def test_who_wins_ordering_preserved(self, result):
        """Shape check: LSMS and COAST lead; ExaSky and Pele trail —
        exactly the paper's ordering extremes."""
        by_app = {r.application: r.measured for r in result.rows}
        top2 = sorted(by_app, key=by_app.get, reverse=True)[:2]
        bottom2 = sorted(by_app, key=by_app.get)[:2]
        assert set(top2) == {"LSMS", "COAST"}
        assert set(bottom2) == {"ExaSky", "Pele"}

    def test_render(self, result):
        text = result.render()
        assert "GAMESS" in text and "OK" in text


class TestFigure2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_figure2()

    def test_seven_history_points(self, result):
        assert len(result.single_node) == 7
        assert len(result.at_scale) == 3

    def test_all_shape_checks_pass(self, result):
        checks = result.checks()
        assert all(checks.values()), checks

    def test_machines_in_order(self, result):
        machines = [m for _, m, _, _ in result.single_node]
        assert machines == ["Cori", "Theta", "Eagle", "Summit", "Summit",
                            "Summit", "Frontier"]

    def test_render(self, result):
        text = result.render()
        assert "75x" in text
        assert "Frontier" in text


class TestIntext:
    @pytest.fixture(scope="class")
    def result(self):
        return run_intext()

    def test_all_claims_pass(self, result):
        failing = [r.claim.description for r in result.results if not r.ok]
        assert not failing, failing

    def test_claim_coverage(self, result):
        """Every application section contributes at least one claim."""
        sections = {r.claim.section for r in result.results}
        assert {"2.1", "3.1", "3.3", "3.4", "3.5", "3.6", "3.8", "3.9",
                "3.10"} <= sections

    def test_twenty_claims(self):
        assert len(ALL_CLAIMS) == 20

    def test_scaled_claims_present(self):
        descs = [c.description for c in ALL_CLAIMS]
        assert sum("ScaledComm" in d for d in descs) == 3

    def test_render(self, result):
        text = result.render()
        assert "Verdict" in text
        assert "MISS" not in text


class TestFullReport:
    def test_report_generates(self):
        text = full_report()
        assert "Figure 1" in text
        assert "Table 1" in text
        assert "Table 2" in text
        assert "Figure 2" in text
        assert "MISS" not in text


class TestDashboard:
    def test_all_apps_on_track(self):
        from repro.experiments import build_dashboard
        from repro.core.challenge import ReviewVerdict

        d = build_dashboard()
        assert len(d.rows) == 8
        assert d.all_on_track
        for row in d.rows:
            assert row.verdict is ReviewVerdict.ON_TRACK
            assert row.achieved_factor > row.target_factor * 0.9

    def test_render(self):
        from repro.experiments import build_dashboard

        text = build_dashboard().render()
        assert "COE readiness dashboard" in text
        assert "on track" in text
