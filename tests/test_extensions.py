"""Tests for the extension modules: refluxing, R2C FFT, APSP paths,
OpenACC, the profiler/compiler tooling, 3-way CCC, SPH, training guides."""

import networkx as nx
import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.amr import FluxRegister, TwoLevelAdvection
from repro.core import (
    TRAINING_CATALOG,
    TopicArea,
    generate_quick_start_guide,
    seed_paper_lessons,
    topics_by_area,
)
from repro.core.lessons import Channel
from repro.gpu import (
    KernelSpec,
    MathLibrary,
    apply_compiler_fix,
    assembly_report,
    profile_kernels,
)
from repro.graph import (
    explain_relationships,
    floyd_warshall,
    floyd_warshall_with_paths,
    generate_knowledge_graph,
)
from repro.hardware import CRUSHER, FRONTIER, SPOCK
from repro.hardware.gpu import MI250X_GCD, V100
from repro.hardware.interconnect import SLINGSHOT_11
from repro.particles import (
    EquationOfState,
    cubic_spline_kernel,
    sph_density,
    sph_pressure_forces,
    uniform_lattice,
)
from repro.progmodel import OpenACCDevice, OpenACCError
from repro.similarity import (
    random_allele_data,
    threeway_counts_bruteforce,
    threeway_counts_gemm,
    threeway_similarity,
)
from repro.spectral import SlabRFFT3D, r2c_traffic_saving


class TestFluxRegister:
    def test_reflux_correction_is_difference(self):
        reg = FluxRegister(n_faces=2, substeps=2)
        reg.add_coarse(np.array([1.0, 2.0]), 1.0)
        reg.add_fine(np.array([0.6, 1.1]), 0.5)
        reg.add_fine(np.array([0.6, 1.1]), 0.5)
        np.testing.assert_allclose(reg.reflux_correction(), [-0.4, -0.9])

    def test_spatial_averaging(self):
        reg = FluxRegister(n_faces=1, fine_faces_per_coarse=2, substeps=1)
        reg.add_coarse(np.array([1.0]), 1.0)
        reg.add_fine(np.array([0.8, 1.2]), 1.0)  # mean = 1.0
        assert reg.reflux_correction()[0] == pytest.approx(0.0)

    def test_missing_substeps_rejected(self):
        reg = FluxRegister(n_faces=1, substeps=2)
        reg.add_coarse(np.array([1.0]), 1.0)
        reg.add_fine(np.array([1.0]), 0.5)
        with pytest.raises(RuntimeError, match="substeps"):
            reg.reflux_correction()

    def test_shape_validation(self):
        reg = FluxRegister(n_faces=2, substeps=1)
        with pytest.raises(ValueError):
            reg.add_coarse(np.array([1.0]), 1.0)
        with pytest.raises(ValueError):
            reg.add_fine(np.array([1.0, 2.0, 3.0]), 1.0)


class TestTwoLevelAdvection:
    def _make(self):
        sim = TwoLevelAdvection(n_coarse=32, lo=10, hi=16, ratio=2)
        sim.set_initial(lambda x: np.exp(-0.1 * (x - 8.0) ** 2))
        return sim

    def test_refluxing_conserves_mass_exactly(self):
        sim = self._make()
        m0 = sim.total_mass()
        for _ in range(30):
            sim.step(0.5, reflux=True)
        assert sim.total_mass() == pytest.approx(m0, abs=1e-12)

    def test_without_refluxing_mass_drifts(self):
        sim = self._make()
        m0 = sim.total_mass()
        for _ in range(30):
            sim.step(0.5, reflux=False)
        assert abs(sim.total_mass() - m0) > 1e-3

    def test_solution_stays_bounded(self):
        sim = self._make()
        for _ in range(50):
            sim.step(0.8)
        assert sim.coarse.max() <= 1.01
        assert sim.coarse.min() >= -1e-12

    def test_cfl_validation(self):
        sim = self._make()
        with pytest.raises(ValueError):
            sim.step(1.5)

    def test_region_validation(self):
        with pytest.raises(ValueError):
            TwoLevelAdvection(n_coarse=8, lo=5, hi=3)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=2, max_value=4),
           st.floats(min_value=0.1, max_value=0.9))
    def test_property_conservation(self, ratio, dt):
        sim = TwoLevelAdvection(n_coarse=24, lo=8, hi=12, ratio=ratio)
        sim.set_initial(lambda x: 1.0 + 0.5 * np.sin(2 * np.pi * x / 24))
        m0 = sim.total_mass()
        for _ in range(5):
            sim.step(dt, reflux=True)
        assert sim.total_mass() == pytest.approx(m0, rel=1e-12)


class TestSlabRFFT:
    def test_forward_matches_numpy(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(16, 16, 16))
        f = SlabRFFT3D(16, 4, fabric=SLINGSHOT_11)
        spec = f.gather_spectrum(f.forward(f.scatter(x)))
        ref = np.fft.fft(np.fft.fft(np.fft.rfft(x, axis=2), axis=1), axis=0)
        np.testing.assert_allclose(spec, ref, atol=1e-10)

    def test_roundtrip(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(12, 12, 12))
        f = SlabRFFT3D(12, 3, fabric=SLINGSHOT_11)
        back = f.gather_slabs(f.inverse(f.forward(f.scatter(x))))
        np.testing.assert_allclose(back, x, atol=1e-12)

    def test_complex_input_rejected(self):
        f = SlabRFFT3D(8, 2, fabric=SLINGSHOT_11)
        with pytest.raises(ValueError, match="real"):
            f.scatter(np.zeros((8, 8, 8), dtype=complex))

    def test_r2c_halves_transpose_traffic(self):
        """The production-code reason to use R2C."""
        from repro.spectral import SlabFFT3D

        c = SlabFFT3D(64, 8, fabric=SLINGSHOT_11)
        r = SlabRFFT3D(64, 8, fabric=SLINGSHOT_11)
        rng = np.random.default_rng(2)
        x = rng.normal(size=(64, 64, 64))
        c.forward(c.scatter(x.astype(complex)))
        r.forward(r.scatter(x))
        ratio = c.stats.bytes_per_rank / r.stats.bytes_per_rank
        assert ratio == pytest.approx(r2c_traffic_saving(64), rel=0.01)
        assert 1.8 < ratio < 2.05


class TestApspPaths:
    @pytest.fixture(scope="class")
    def kg(self):
        return generate_knowledge_graph(60, seed=9)

    def test_distances_match_plain_fw(self, kg):
        d = kg.distance_matrix()
        apsp = floyd_warshall_with_paths(d)
        np.testing.assert_allclose(apsp.dist, floyd_warshall(d))

    def test_paths_match_networkx(self, kg):
        apsp = floyd_warshall_with_paths(kg.distance_matrix())
        for src, dst in ((0, 30), (5, 55), (10, 20)):
            nx_len = nx.shortest_path_length(kg.graph, src, dst, weight="weight")
            assert apsp.dist[src, dst] == pytest.approx(nx_len)
            path = apsp.path(src, dst)
            assert path[0] == src and path[-1] == dst
            # the reconstructed path really has the claimed length
            w = kg.distance_matrix()
            assert apsp.path_length(path, w) == pytest.approx(apsp.dist[src, dst])

    def test_unreachable_returns_none(self):
        d = np.full((3, 3), np.inf)
        np.fill_diagonal(d, 0)
        d[0, 1] = 1.0
        apsp = floyd_warshall_with_paths(d)
        assert apsp.path(0, 2) is None
        assert apsp.path(0, 0) == [0]

    def test_explain_relationships_narrative(self, kg):
        apsp = floyd_warshall_with_paths(kg.distance_matrix())
        hits = explain_relationships(kg, apsp, source_type="compound",
                                     target_type="disease",
                                     max_distance=6.0, top=3)
        for h in hits:
            assert h.narrative.startswith("compound")
            assert "disease" in h.narrative
            assert "-[" in h.narrative
            assert not kg.graph.has_edge(h.source, h.target)

    def test_vertex_validation(self):
        apsp = floyd_warshall_with_paths(np.zeros((3, 3)))
        with pytest.raises(ValueError):
            apsp.path(0, 9)


class TestOpenACC:
    MB = 1 << 20

    def test_data_clauses_move_the_right_bytes(self):
        acc = OpenACCDevice(MI250X_GCD)
        with acc.data(copyin={"a": self.MB}, copyout={"b": 2 * self.MB},
                      copy={"c": 4 * self.MB}, create={"d": 8 * self.MB}):
            pass
        assert acc.ledger.h2d_bytes == 5 * self.MB  # copyin + copy
        assert acc.ledger.d2h_bytes == 6 * self.MB  # copyout + copy

    def test_present_check(self):
        acc = OpenACCDevice(MI250X_GCD)
        with pytest.raises(OpenACCError):
            acc.parallel_loop(KernelSpec(name="k", flops=1e6, bytes_read=1e5),
                              present=("ghost",))

    def test_update_directives(self):
        acc = OpenACCDevice(MI250X_GCD)
        with acc.data(create={"u": self.MB}):
            acc.update_device("u")
            acc.update_self("u")
        assert acc.ledger.h2d_transfers == 1
        assert acc.ledger.d2h_transfers == 1

    def test_openacc_parity_with_native(self):
        """§3.8: the OpenACC prototype performed on par with native."""
        from repro.gpu import Device

        k = KernelSpec(name="k", flops=1e12, bytes_read=1e8)
        native = Device(MI250X_GCD)
        native.launch_sync(k)

        acc = OpenACCDevice(MI250X_GCD)
        with acc.data(create={"u": self.MB}):
            acc.parallel_loop(k, present=("u",))
        ratio = native.elapsed / acc.elapsed
        assert 0.7 < ratio < 1.0  # close, but directives never beat native

    def test_async_and_wait(self):
        acc = OpenACCDevice(MI250X_GCD)
        with acc.data(create={"u": self.MB}):
            acc.parallel_loop(KernelSpec(name="k", flops=1e11, bytes_read=1e7),
                              present=("u",), async_=True)
            before = acc.elapsed
            acc.wait()
            assert acc.elapsed > before

    def test_double_entry_rejected(self):
        acc = OpenACCDevice(MI250X_GCD)
        with acc.data(create={"u": self.MB}):
            with pytest.raises(OpenACCError):
                with acc.data(create={"u": self.MB}):
                    pass


class TestProfiler:
    def test_profile_sorted_and_shares_sum_to_one(self):
        kernels = [
            KernelSpec(name="big", flops=1e12, bytes_read=1e8),
            KernelSpec(name="small", flops=1e9, bytes_read=1e6),
        ]
        rows = profile_kernels(kernels, MI250X_GCD)
        assert rows[0].kernel == "big"
        assert sum(r.share for r in rows) == pytest.approx(1.0)

    def test_assembly_report_detects_spills(self):
        k = KernelSpec(name="tors", flops=1e9, bytes_read=1e7,
                       registers_per_thread=290)
        rep = assembly_report(k, MI250X_GCD)
        assert rep.spills
        assert rep.vgpr_spill_count == 290 - 256
        assert rep.amdhsa_private_segment_fixed_size == 4 * rep.vgpr_spill_count

    def test_compiler_fix_eliminates_spills(self):
        """§3.10.3: the register-allocation fix 'virtually eliminated
        register spills from the key kernels'."""
        k = KernelSpec(name="tors", flops=1e9, bytes_read=1e7,
                       registers_per_thread=290)
        fixed = apply_compiler_fix(k)
        assert not assembly_report(fixed, MI250X_GCD).spills
        # and the fixed kernel is faster
        from repro.gpu import time_kernel

        assert time_kernel(fixed, MI250X_GCD).total_time <= \
            time_kernel(k, MI250X_GCD).total_time

    def test_compiler_fix_validation(self):
        with pytest.raises(ValueError):
            apply_compiler_fix(KernelSpec(name="k", flops=1.0, bytes_read=1.0),
                               fp64_constants=-1)

    def test_math_microbenchmark(self):
        ml = MathLibrary(optimized=False)
        bench = ml.microbenchmark(MI250X_GCD)
        assert bench["fma"] > bench["exp"] > bench["pow"]

    def test_optimized_library_improves_transcendentals(self):
        old = MathLibrary(optimized=False)
        new = MathLibrary(optimized=True)
        for fn in ("pow", "exp", "log"):
            assert new.throughput(fn, MI250X_GCD) > old.throughput(fn, MI250X_GCD)
        # plain FMA is unchanged
        assert new.throughput("fma", V100) == old.throughput("fma", V100)

    def test_math_derate_for_exp_heavy_kernels(self):
        ml = MathLibrary()
        pure_fma = ml.kernel_math_derate(0.0, device=MI250X_GCD)
        exp_heavy = ml.kernel_math_derate(0.5, device=MI250X_GCD)
        assert pure_fma == pytest.approx(1.0)
        assert exp_heavy < 0.5

    def test_unknown_function(self):
        with pytest.raises(KeyError):
            MathLibrary().throughput("erfc", V100)


class TestThreewayCCC:
    def test_gemm_matches_bruteforce(self):
        data = random_allele_data(4, 10, seed=0)
        np.testing.assert_array_equal(
            threeway_counts_gemm(data), threeway_counts_bruteforce(data)
        )

    def test_fp16_exact(self):
        data = random_allele_data(5, 20, seed=1)
        np.testing.assert_array_equal(
            threeway_counts_gemm(data, fp16=True),
            threeway_counts_bruteforce(data),
        )

    def test_counts_sum_to_fields(self):
        data = random_allele_data(4, 17, seed=2)
        counts = threeway_counts_gemm(data)
        np.testing.assert_allclose(counts.sum(axis=(0, 1, 2)), 17.0)

    def test_similarity_bounded_and_symmetric_under_ij_swap(self):
        data = random_allele_data(5, 30, seed=3)
        sim = threeway_similarity(data)
        assert np.all(sim >= 0) and np.all(sim <= 1)
        np.testing.assert_allclose(sim, sim.transpose(1, 0, 2), atol=1e-12)

    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=2, max_value=5), st.integers(min_value=4, max_value=16))
    def test_property_vs_bruteforce(self, n, m):
        data = random_allele_data(n, m, seed=n + m)
        np.testing.assert_array_equal(
            threeway_counts_gemm(data, fp16=True),
            threeway_counts_bruteforce(data),
        )


class TestSph:
    def test_kernel_normalization(self):
        """∫W dV = 1: check by dense quadrature."""
        h = 1.0
        r = np.linspace(0, h, 2000)
        w = cubic_spline_kernel(r, h)
        integral = np.trapezoid(4 * np.pi * r**2 * w, r)
        assert integral == pytest.approx(1.0, rel=1e-3)

    def test_kernel_compact_support(self):
        assert cubic_spline_kernel(np.array([1.1]), 1.0)[0] == 0.0
        assert cubic_spline_kernel(np.array([0.0]), 1.0)[0] > 0.0

    def test_uniform_lattice_density_constant(self):
        x, L = uniform_lattice(5, 1.0)
        rho = sph_density(x, np.ones(len(x)), 1.3, box_size=L)
        assert rho.std() / rho.mean() < 1e-10
        # density must approximate the true number density (1 per unit vol)
        assert rho.mean() == pytest.approx(1.0, rel=0.5)

    def test_pressure_forces_conserve_momentum(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 3, size=(25, 3))
        f = sph_pressure_forces(x, np.ones(25), 1.0)
        np.testing.assert_allclose(f.sum(axis=0), 0.0, atol=1e-12)

    def test_compressed_pair_repels(self):
        x = np.array([[0.0, 0.0, 0.0], [0.4, 0.0, 0.0], [10.0, 10.0, 10.0]])
        f = sph_pressure_forces(x, np.ones(3), 1.0)
        assert f[0, 0] < 0 and f[1, 0] > 0  # pushed apart

    def test_eos(self):
        eos = EquationOfState(K=2.0, gamma=2.0)
        assert eos.pressure(np.array([3.0]))[0] == pytest.approx(18.0)
        assert eos.sound_speed(np.array([1.0]))[0] == pytest.approx(2.0)

    def test_lattice_validation(self):
        with pytest.raises(ValueError):
            uniform_lattice(1, 1.0)
        with pytest.raises(ValueError):
            cubic_spline_kernel(np.array([1.0]), 0.0)


class TestTraining:
    def test_catalog_covers_paper_topics(self):
        titles = " ".join(t.title for t in TRAINING_CATALOG)
        for phrase in ("atomics", "Register spilling", "launch latencies",
                       "SGEMM/DGEMM", "Infinity Fabric", "HIPifying",
                       "NUMA"):
            assert phrase in titles

    def test_topics_by_area(self):
        hw = topics_by_area(TopicArea.HARDWARE)
        assert all(t.area is TopicArea.HARDWARE for t in hw)
        assert len(hw) >= 3

    def test_quick_start_guide_for_early_system(self):
        kb = seed_paper_lessons()
        # promote one lesson into the guide
        kb.disseminate(0, Channel.USER_GUIDE)
        guide = generate_quick_start_guide(SPOCK, kb)
        assert "Spock Quick-Start Guide" in guide
        assert "MI100" in guide
        assert "not MI250X" in guide  # the difference-from-Frontier section
        assert "HIP API coverage" in guide  # the promoted lesson

    def test_frontier_guide_has_no_differences(self):
        guide = generate_quick_start_guide(FRONTIER, seed_paper_lessons())
        assert "production node architecture" in guide

    def test_crusher_converges(self):
        guide = generate_quick_start_guide(CRUSHER, seed_paper_lessons())
        assert "1.0 / 1.0" in guide


class TestTraceExport:
    def test_chrome_trace_is_valid_json_with_all_launches(self):
        import json

        from repro.gpu import Device, KernelSpec, to_chrome_trace

        d = Device(MI250X_GCD)
        for i in range(4):
            d.launch(KernelSpec(name=f"k{i}", flops=1e9, bytes_read=1e7))
        d.synchronize()
        doc = json.loads(to_chrome_trace(d))
        kernels = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert len(kernels) == 4
        assert all(e["dur"] > 0 for e in kernels)
        # in-order stream: events must not overlap
        spans = sorted((e["ts"], e["ts"] + e["dur"]) for e in kernels)
        assert all(a[1] <= b[0] + 1e-9 for a, b in zip(spans, spans[1:]))

    def test_timeline_stats_detect_launch_gaps(self):
        from repro.gpu import Device, KernelSpec, timeline_stats

        d = Device(MI250X_GCD)
        tiny = KernelSpec(name="tiny", flops=1e4, bytes_read=1e4)
        # synchronous launching exposes per-launch gaps
        for _ in range(10):
            d.launch_sync(tiny)
        stats = timeline_stats(d)
        assert stats.kernels == 10
        assert stats.utilization < 0.9
        assert stats.largest_gap > 0

    def test_async_launching_closes_gaps(self):
        from repro.gpu import Device, KernelSpec, timeline_stats

        d = Device(MI250X_GCD)
        big = KernelSpec(name="big", flops=5e10, bytes_read=1e8)
        for _ in range(10):
            d.launch(big)  # async: enqueue back-to-back
        d.synchronize()
        stats = timeline_stats(d)
        assert stats.utilization > 0.95

    def test_empty_trace(self):
        from repro.gpu import Device, timeline_stats

        stats = timeline_stats(Device(V100))
        assert stats.kernels == 0
        assert stats.utilization == 1.0
