"""Failure-injection tests: error paths across the stack behave sanely."""

import numpy as np
import pytest

from repro.gpu import KernelSpec, OutOfDeviceMemory
from repro.hardware.gpu import MI250X_GCD, V100
from repro.hardware.interconnect import SLINGSHOT_11
from repro.mpisim import CommError, SimComm
from repro.ode import BdfIntegrator, IntegrationError
from repro.progmodel import (
    CudaRuntime,
    GpuApiError,
    HipRuntime,
    MacroLayer,
    MissingApiParity,
)


class TestDeviceMemoryExhaustion:
    def test_oom_propagates_through_cuda_api(self):
        rt = CudaRuntime(V100)
        with pytest.raises(OutOfDeviceMemory):
            rt.cudaMalloc(int(2 * V100.mem_capacity))

    def test_oom_from_fragmentation_pressure(self):
        """Allocate until the device fills; the runtime must fail loudly
        rather than wrap or corrupt."""
        rt = HipRuntime(MI250X_GCD)
        chunk = int(MI250X_GCD.mem_capacity // 4)
        handles = [rt.hipMalloc(chunk) for _ in range(3)]
        with pytest.raises(OutOfDeviceMemory):
            rt.hipMalloc(2 * chunk)
        # recovery: freeing restores allocatability
        for h in handles:
            rt.hipFree(h)
        h = rt.hipMalloc(3 * chunk)
        rt.hipFree(h)

    def test_use_after_free_detected(self):
        rt = CudaRuntime(V100)
        h = rt.cudaMalloc(1 << 20)
        rt.cudaFree(h)
        with pytest.raises(ValueError, match="double free|foreign"):
            rt.cudaFree(h)


class TestApiMisuse:
    def test_event_timing_before_recording(self):
        rt = CudaRuntime(V100)
        e1, e2 = rt.cudaEventCreate(), rt.cudaEventCreate()
        with pytest.raises(GpuApiError):
            rt.cudaEventElapsedTime(e1, e2)

    def test_device_index_out_of_range(self):
        rt = HipRuntime(MI250X_GCD, count=4)
        with pytest.raises(GpuApiError):
            rt.hipSetDevice(4)

    def test_macro_layer_missing_parity_is_loud(self):
        """The Cholla-strategy constraint: functionality must exist in
        both APIs, and violations surface at the call site."""
        ml = MacroLayer(MI250X_GCD)
        with pytest.raises(MissingApiParity):
            ml.cudaGraphInstantiate

    def test_kernel_launch_count_validation(self):
        with pytest.raises(ValueError):
            KernelSpec(name="k", flops=1.0, bytes_read=1.0, launch_count=0)


class TestSolverFailureModes:
    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_bdf_reports_newton_failures_not_garbage(self):
        """An ODE whose Jacobian explodes: the solver either converges with
        failures recorded or raises IntegrationError — never returns NaN."""

        def nasty(t, y):
            return np.array([1e150 * y[0] ** 3])

        integ = BdfIntegrator(nasty, rtol=1e-6, atol=1e-9, max_steps=200)
        try:
            res = integ.integrate(np.array([1.0]), 0.0, 1.0)
            assert np.all(np.isfinite(res.y))
        except IntegrationError:
            pass  # also acceptable: a loud failure

    def test_bdf_step_underflow_raises(self):
        def discontinuous(t, y):
            # a non-integrable discontinuity the controller cannot cross
            return np.array([np.inf if t > 0.5 else -y[0]])

        integ = BdfIntegrator(discontinuous, rtol=1e-8, atol=1e-12,
                              max_steps=10_000)
        with pytest.raises((IntegrationError, FloatingPointError, ValueError)):
            res = integ.integrate(np.array([1.0]), 0.0, 1.0)
            # if it "succeeded", the state must still be finite to count
            if not np.all(np.isfinite(res.y)):
                raise IntegrationError("non-finite state")


class TestCommunicatorMisuse:
    def test_wrong_payload_counts(self):
        comm = SimComm(4, SLINGSHOT_11)
        with pytest.raises(CommError):
            comm.alltoall([[1, 2], [3, 4]], nbytes_per_pair=8)
        with pytest.raises(CommError):
            comm.ialltoall([[1]], nbytes_per_pair=8)

    def test_clock_cannot_go_backward(self):
        comm = SimComm(2, SLINGSHOT_11)
        with pytest.raises(CommError):
            comm.advance_all(np.array([-1.0, 0.0]))

    def test_pending_op_wait_is_idempotent(self):
        comm = SimComm(2, SLINGSHOT_11)
        op = comm.isendrecv(0, 1, nbytes=1 << 20)
        op.wait()
        t = comm.elapsed
        op.wait()
        assert comm.elapsed == t


class TestNonblockingAlltoall:
    def test_data_correct_and_overlap_works(self):
        comm = SimComm(4, SLINGSHOT_11, ranks_per_node=4)
        matrix = [[(src, dst) for dst in range(4)] for src in range(4)]
        out, op = comm.ialltoall(matrix, nbytes_per_pair=1 << 16)
        assert out[2][3] == (3, 2)
        # big local compute overlaps the exchange entirely
        comm.advance_all(1.0)
        op.wait()
        assert comm.elapsed == pytest.approx(1.0)

    def test_blocking_when_no_overlap(self):
        comm = SimComm(4, SLINGSHOT_11, ranks_per_node=4)
        matrix = [[0] * 4 for _ in range(4)]
        _, op = comm.ialltoall(matrix, nbytes_per_pair=1 << 24)
        op.wait()
        assert comm.elapsed > 0


class TestInt8Path:
    def test_int8_counts_exact(self):
        from repro.similarity import (
            cooccurrence_counts_bruteforce,
            cooccurrence_counts_gemm,
            random_allele_data,
        )

        data = random_allele_data(10, 64, seed=5)
        np.testing.assert_array_equal(
            cooccurrence_counts_gemm(data, int8=True),
            cooccurrence_counts_bruteforce(data),
        )

    def test_fp16_and_int8_mutually_exclusive(self):
        from repro.similarity import cooccurrence_counts_gemm, random_allele_data

        data = random_allele_data(4, 8)
        with pytest.raises(ValueError):
            cooccurrence_counts_gemm(data, fp16=True, int8=True)


class TestEarlyAccessExperiment:
    def test_ladder_monotone(self):
        from repro.experiments.earlyaccess import (
            prediction_improves_with_generation,
            run_ladder,
        )

        reports = run_ladder()
        assert [r.machine for r in reports] == ["Poplar", "Spock", "Crusher",
                                                "Frontier"]
        assert prediction_improves_with_generation()
        assert reports[2].frontier_prediction_error == pytest.approx(0.0)

    def test_spock_scaling_modest_but_meaningful(self):
        from repro.experiments.earlyaccess import spock_scaling_study

        points = spock_scaling_study()
        effs = [p.efficiency for p in points]
        assert all(0.9 < e <= 1.0 for e in effs)
        assert all(a >= b for a, b in zip(effs, effs[1:]))  # degrades with scale

    def test_validation(self):
        from repro.experiments.earlyaccess import bundle_time, spock_scaling_study
        from repro.hardware.catalog import CORI

        with pytest.raises(ValueError):
            bundle_time(CORI)
        with pytest.raises(ValueError):
            spock_scaling_study(max_nodes=0)
