"""GEMM-tally engine: exact equivalence with the naive tally loops.

The whole point of the CoMet recast is that the bit-packed popcount
sweeps and the batched einsum contractions are *not approximations*: the
tallies are integers and every path must agree exactly with the
brute-force loops, including on degenerate inputs (all-one-state columns,
missing-data columns, single vectors).  Hypothesis drives random allele
matrices through all of it.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.similarity import (
    N_STATES,
    ccc_similarity,
    cooccurrence_counts,
    cooccurrence_counts_bruteforce,
    pack_alleles,
    popcount_tallies_2way,
    tally_2way,
    tally_3way,
    threeway_counts,
    threeway_counts_bruteforce,
    threeway_similarity,
)

#: -1 encodes a missing observation; it belongs to no allele state.
MISSING = -1


def allele_matrices(max_n: int, max_m: int, *, missing: bool = True):
    """Random allele matrices, with missing entries and degenerate columns."""
    values = st.integers(MISSING if missing else 0, N_STATES - 1)

    def build(draw):
        n = draw(st.integers(1, max_n))
        m = draw(st.integers(1, max_m))
        data = np.array(
            draw(st.lists(st.lists(values, min_size=m, max_size=m),
                          min_size=n, max_size=n)),
            dtype=np.int8,
        )
        # force some degenerate columns: constant-state and all-missing
        for col_value in draw(st.lists(values, max_size=3)):
            col = draw(st.integers(0, m - 1))
            data[:, col] = col_value
        return data

    return st.composite(lambda draw: build(draw))()


class TestTwoWayEquivalence:
    @settings(max_examples=40, deadline=None)
    @given(allele_matrices(10, 80))
    def test_popcount_and_einsum_match_bruteforce_exactly(self, data):
        expected = cooccurrence_counts_bruteforce(data).astype(np.int64)
        for method in ("popcount", "einsum"):
            got = tally_2way(data, method=method)
            assert got.dtype == np.int64
            np.testing.assert_array_equal(got, expected, err_msg=method)

    @settings(max_examples=15, deadline=None)
    @given(allele_matrices(8, 60))
    def test_similarity_identical_on_both_paths(self, data):
        np.testing.assert_array_equal(
            ccc_similarity(data, use_gemm_tally=True),
            ccc_similarity(data, use_gemm_tally=False),
        )

    def test_dispatcher_ablation_flag(self):
        rng = np.random.default_rng(7)
        data = rng.integers(0, N_STATES, (6, 40), dtype=np.int8)
        np.testing.assert_array_equal(
            cooccurrence_counts(data, use_gemm_tally=True),
            cooccurrence_counts(data, use_gemm_tally=False),
        )

    def test_unknown_method_rejected(self):
        data = np.zeros((2, 8), dtype=np.int8)
        with pytest.raises(ValueError):
            tally_2way(data, method="tensor")
        with pytest.raises(ValueError):
            tally_3way(data, method="tensor")


class TestThreeWayEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(allele_matrices(5, 30))
    def test_popcount_and_einsum_match_bruteforce_exactly(self, data):
        expected = threeway_counts_bruteforce(data).astype(np.int64)
        for method in ("popcount", "einsum"):
            got = tally_3way(data, method=method)
            assert got.dtype == np.int64
            np.testing.assert_array_equal(got, expected, err_msg=method)

    @settings(max_examples=8, deadline=None)
    @given(allele_matrices(4, 24))
    def test_similarity_identical_on_both_paths(self, data):
        np.testing.assert_array_equal(
            threeway_similarity(data, use_gemm_tally=True),
            threeway_similarity(data, use_gemm_tally=False),
        )

    def test_dispatcher_ablation_flag(self):
        rng = np.random.default_rng(11)
        data = rng.integers(0, N_STATES, (4, 20), dtype=np.int8)
        np.testing.assert_array_equal(
            threeway_counts(data, use_gemm_tally=True),
            threeway_counts(data, use_gemm_tally=False),
        )


class TestPacking:
    def test_pad_bits_are_zero(self):
        """Word padding must never leak into the tallies."""
        data = np.ones((3, 65), dtype=np.int8)  # one bit into the 2nd word
        packed = pack_alleles(data)
        assert packed.n_words == 2
        counts = popcount_tallies_2way(packed)
        assert counts[1, 1].max() == 65

    def test_all_missing_matrix_tallies_to_zero(self):
        data = np.full((4, 32), MISSING, dtype=np.int8)
        assert tally_2way(data).sum() == 0
        assert tally_3way(data).sum() == 0
        np.testing.assert_array_equal(
            tally_2way(data), cooccurrence_counts_bruteforce(data).astype(np.int64)
        )

    def test_counts_partition_fields_without_missing(self):
        rng = np.random.default_rng(3)
        data = rng.integers(0, N_STATES, (7, 129), dtype=np.int8)
        counts = tally_2way(data)
        np.testing.assert_array_equal(counts.sum(axis=(0, 1)), 129)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError):
            pack_alleles(np.zeros(8, dtype=np.int8))
