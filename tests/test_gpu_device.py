"""Tests for streams, events, and the Device execution engine."""

import pytest

from repro.gpu import Device, DeviceClock, KernelSpec
from repro.hardware.gpu import MI250X_GCD, V100


def kern(flops=1e9, **kw):
    base = dict(name="k", flops=flops, bytes_read=1e7)
    base.update(kw)
    return KernelSpec(**base)


class TestStreamsAndEvents:
    def test_async_enqueue_does_not_block_host(self):
        clock = DeviceClock()
        s = clock.create_stream()
        s.enqueue(1.0)
        assert clock.host_now == 0.0
        clock.synchronize_stream(s)
        assert clock.host_now >= 1.0

    def test_streams_run_concurrently(self):
        clock = DeviceClock()
        s1, s2 = clock.create_stream(), clock.create_stream()
        s1.enqueue(1.0)
        s2.enqueue(1.0)
        clock.synchronize_device()
        # concurrent streams: total 1.0, not 2.0
        assert clock.host_now == pytest.approx(1.0)

    def test_in_order_within_stream(self):
        clock = DeviceClock()
        s = clock.create_stream()
        s.enqueue(1.0)
        end = s.enqueue(0.5)
        assert end == pytest.approx(1.5)

    def test_event_cross_stream_dependency(self):
        clock = DeviceClock()
        s1, s2 = clock.create_stream(), clock.create_stream()
        e = clock.create_event()
        s1.enqueue(2.0)
        s1.record_event(e)
        s2.wait_event(e)
        end = s2.enqueue(0.1)
        assert end == pytest.approx(2.1)

    def test_wait_on_unrecorded_event_raises(self):
        clock = DeviceClock()
        s = clock.create_stream()
        e = clock.create_event()
        with pytest.raises(RuntimeError):
            s.wait_event(e)

    def test_launch_latency_delays_start(self):
        clock = DeviceClock()
        s = clock.create_stream()
        end = s.enqueue(1.0, launch_latency=5e-6)
        assert end == pytest.approx(1.0 + 5e-6)

    def test_negative_duration_rejected(self):
        clock = DeviceClock()
        s = clock.create_stream()
        with pytest.raises(ValueError):
            s.enqueue(-1.0)


class TestDevice:
    def test_launch_is_async(self):
        d = Device(V100)
        rec = d.launch(kern(flops=1e12))
        # host only paid the API sliver, not the kernel time
        assert d.elapsed < rec.timing.execution_time
        d.synchronize()
        assert d.elapsed >= rec.timing.execution_time

    def test_launch_sync_blocks(self):
        d = Device(V100)
        rec = d.launch_sync(kern(flops=1e12))
        assert d.elapsed >= rec.timing.execution_time

    def test_trace_records_launches(self):
        d = Device(V100)
        d.launch(kern(name="a" if False else "a"))
        d.launch(kern())
        assert len(d.trace) == 2
        assert d.kernel_launches == 2

    def test_memcpy_accounting(self):
        d = Device(V100)
        d.memcpy_h2d(1 << 20)
        d.memcpy_d2h(1 << 10)
        assert d.bytes_h2d == 1 << 20
        assert d.bytes_d2h == 1 << 10
        assert d.elapsed > 0

    def test_malloc_free_roundtrip(self):
        d = Device(V100)
        h = d.malloc(1 << 20)
        d.free(h)
        assert d.allocator.bytes_in_use == 0

    def test_two_streams_overlap_kernels(self):
        d = Device(MI250X_GCD)
        s2 = d.create_stream()
        k = kern(flops=1e12)
        d.launch(k)           # default stream
        d.launch(k, stream=s2)
        d.synchronize()
        serial = 2 * d.trace[0].timing.execution_time
        assert d.elapsed < serial * 0.75

    def test_transfer_overlaps_compute_on_separate_stream(self):
        d = Device(V100)
        copy_stream = d.create_stream()
        d.launch(kern(flops=1e12))
        d.memcpy_h2d(1 << 28, stream=copy_stream, sync=False)
        d.synchronize()
        k_time = d.trace[0].timing.execution_time
        copy_time = (1 << 28) / V100.host_link_bandwidth
        assert d.elapsed < k_time + copy_time
