"""Tests for kernel descriptors, fusion/fission, occupancy, and timing."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.gpu import (
    KernelSpec,
    compute_occupancy,
    divergence_factor,
    fission,
    fuse,
    latency_hiding_factor,
    spill_traffic_bytes,
    time_kernel,
    time_kernel_sequence,
)
from repro.hardware.gpu import MI250X_GCD, V100, Precision


def make_kernel(**kw) -> KernelSpec:
    base = dict(name="k", flops=1e9, bytes_read=1e8, bytes_written=1e7)
    base.update(kw)
    return KernelSpec(**base)


class TestKernelSpec:
    def test_arithmetic_intensity(self):
        k = make_kernel(flops=2e9, bytes_read=1e9, bytes_written=0.0)
        assert k.arithmetic_intensity == pytest.approx(2.0)

    def test_zero_bytes_gives_infinite_intensity(self):
        k = make_kernel(bytes_read=0.0, bytes_written=0.0)
        assert math.isinf(k.arithmetic_intensity)

    def test_negative_resources_rejected(self):
        with pytest.raises(ValueError):
            make_kernel(flops=-1.0)

    def test_bad_lane_fraction_rejected(self):
        with pytest.raises(ValueError):
            make_kernel(active_lane_fraction=0.0)
        with pytest.raises(ValueError):
            make_kernel(active_lane_fraction=1.5)

    def test_scaled_preserves_intensity(self):
        k = make_kernel()
        s = k.scaled(4.0)
        assert s.flops == pytest.approx(4 * k.flops)
        assert s.arithmetic_intensity == pytest.approx(k.arithmetic_intensity)

    def test_scaled_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            make_kernel().scaled(0.0)


class TestFusion:
    def test_fuse_sums_flops(self):
        ks = [make_kernel(name=f"k{i}") for i in range(3)]
        f = fuse(ks)
        assert f.flops == pytest.approx(3e9)
        assert f.launch_count == 1

    def test_fuse_drops_intermediate_traffic(self):
        a = make_kernel(name="a", bytes_written=5e7)
        b = make_kernel(name="b", bytes_read=5e7)
        f = fuse([a, b])
        # interior write+read removed once each
        assert f.bytes_total < a.bytes_total + b.bytes_total

    def test_fuse_raises_register_pressure(self):
        ks = [make_kernel(name=f"k{i}", registers_per_thread=100) for i in range(4)]
        assert fuse(ks).registers_per_thread > 100

    def test_fuse_empty_rejected(self):
        with pytest.raises(ValueError):
            fuse([])

    def test_fuse_mixed_precision_rejected(self):
        with pytest.raises(ValueError):
            fuse([make_kernel(), make_kernel(precision=Precision.FP32)])

    def test_fission_roundtrip_flops(self):
        k = make_kernel(registers_per_thread=300)
        parts = fission(k, 3)
        assert len(parts) == 3
        assert sum(p.flops for p in parts) == pytest.approx(k.flops)

    def test_fission_reduces_registers(self):
        k = make_kernel(registers_per_thread=300)
        for p in fission(k, 3):
            assert p.registers_per_thread < k.registers_per_thread

    def test_fission_adds_boundary_traffic(self):
        k = make_kernel()
        parts = fission(k, 2)
        total = sum(p.bytes_total for p in parts)
        assert total > k.bytes_total

    def test_fission_one_part_is_identity(self):
        k = make_kernel()
        assert fission(k, 1) == [k]

    def test_fission_invalid_parts(self):
        with pytest.raises(ValueError):
            fission(make_kernel(), 0)


class TestOccupancy:
    def test_low_registers_hits_hardware_limit(self):
        k = make_kernel(registers_per_thread=32)
        occ = compute_occupancy(k, MI250X_GCD)
        assert occ.limited_by == "hardware"
        assert occ.occupancy == 1.0

    def test_high_registers_limits_occupancy(self):
        k = make_kernel(registers_per_thread=256)
        occ = compute_occupancy(k, V100)
        assert occ.limited_by == "registers"
        assert occ.occupancy < 1.0

    def test_spill_detection(self):
        k = make_kernel(registers_per_thread=300)
        occ = compute_occupancy(k, V100)
        assert occ.spills
        assert occ.spilled_registers_per_thread == 300 - V100.max_registers_per_thread

    def test_no_spill_no_traffic(self):
        assert spill_traffic_bytes(make_kernel(registers_per_thread=64), V100) == 0.0

    def test_spill_traffic_scales_with_threads(self):
        k1 = make_kernel(registers_per_thread=300, threads=1000)
        k2 = make_kernel(registers_per_thread=300, threads=2000)
        assert spill_traffic_bytes(k2, V100) == pytest.approx(
            2 * spill_traffic_bytes(k1, V100)
        )

    def test_lds_limit(self):
        k = make_kernel(lds_per_workgroup=64 * 1024, workgroup_size=64)
        occ = compute_occupancy(k, MI250X_GCD)
        assert occ.limited_by == "lds"

    @given(st.integers(min_value=16, max_value=255))
    def test_occupancy_monotone_in_registers(self, regs):
        lo = compute_occupancy(make_kernel(registers_per_thread=regs), V100)
        hi = compute_occupancy(make_kernel(registers_per_thread=regs + 1), V100)
        assert hi.waves_per_cu <= lo.waves_per_cu

    def test_latency_hiding_bounds(self):
        assert latency_hiding_factor(1.0) == pytest.approx(1.0)
        assert 0.2 < latency_hiding_factor(0.05) < 0.5
        with pytest.raises(ValueError):
            latency_hiding_factor(0.0)


class TestDivergence:
    def test_full_lanes_no_penalty(self):
        k = make_kernel()
        assert divergence_factor(k, V100) == pytest.approx(1.0)

    def test_wavefront_sensitive_kernel_worse_on_amd(self):
        k = make_kernel(active_lane_fraction=0.5, divergence_wavefront_sensitive=True)
        assert divergence_factor(k, MI250X_GCD) == pytest.approx(
            0.5 * divergence_factor(k, V100), rel=1e-6
        )

    def test_divergence_floor_is_one_lane(self):
        k = make_kernel(active_lane_fraction=1e-6)
        assert divergence_factor(k, MI250X_GCD) >= 1.0 / 64


class TestTiming:
    def test_compute_bound_kernel(self):
        k = make_kernel(flops=1e12, bytes_read=1e6)
        t = time_kernel(k, V100)
        assert t.bound == "compute"
        assert t.total_time > t.execution_time - 1e-12

    def test_memory_bound_kernel(self):
        k = make_kernel(flops=1e6, bytes_read=1e9)
        t = time_kernel(k, V100)
        assert t.bound == "memory"

    def test_mi250x_faster_than_v100_compute_bound(self):
        k = make_kernel(flops=1e12, bytes_read=1e6, registers_per_thread=64)
        tv = time_kernel(k, V100).total_time
        tf = time_kernel(k, MI250X_GCD).total_time
        assert 2.0 < tv / tf < 4.0  # 23.95/7.8 ≈ 3.07

    def test_divergent_kernel_slower(self):
        k = make_kernel(flops=1e12, bytes_read=1e6)
        kd = make_kernel(flops=1e12, bytes_read=1e6, active_lane_fraction=0.1)
        assert time_kernel(kd, V100).total_time > 5 * time_kernel(k, V100).total_time

    def test_spilling_kernel_pays_memory_traffic(self):
        k = make_kernel(flops=1e6, bytes_read=1e6, threads=1 << 22,
                        registers_per_thread=400)
        ks = make_kernel(flops=1e6, bytes_read=1e6, threads=1 << 22,
                         registers_per_thread=64)
        assert time_kernel(k, V100).memory_time > time_kernel(ks, V100).memory_time

    def test_async_sequence_hides_launch_latency(self):
        tiny = make_kernel(flops=1e5, bytes_read=1e5)
        seq = [tiny] * 100
        t_async = time_kernel_sequence(seq, V100, same_stream_async=True)
        t_sync = time_kernel_sequence(seq, V100, same_stream_async=False)
        assert t_async < t_sync

    def test_empty_sequence_is_zero(self):
        assert time_kernel_sequence([], V100) == 0.0

    @given(st.floats(min_value=1e6, max_value=1e14))
    def test_time_monotone_in_flops(self, flops):
        t1 = time_kernel(make_kernel(flops=flops), V100).total_time
        t2 = time_kernel(make_kernel(flops=flops * 2), V100).total_time
        assert t2 >= t1
