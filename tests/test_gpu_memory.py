"""Tests for device allocators, the YAKL-style pool, and UVM accounting."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.gpu import DeviceAllocator, OutOfDeviceMemory, PoolAllocator, UnifiedMemory


class TestDeviceAllocator:
    def test_basic_alloc_free(self):
        a = DeviceAllocator(1 << 20)
        h = a.malloc(1000)
        assert a.bytes_in_use >= 1000
        a.free(h)
        assert a.bytes_in_use == 0
        a.check_invariants()

    def test_alignment(self):
        a = DeviceAllocator(1 << 20, alignment=256)
        h = a.malloc(100)
        assert h.offset % 256 == 0
        assert h.size == 256

    def test_out_of_memory(self):
        a = DeviceAllocator(1024)
        with pytest.raises(OutOfDeviceMemory):
            a.malloc(4096)

    def test_double_free_rejected(self):
        a = DeviceAllocator(1 << 20)
        h = a.malloc(100)
        a.free(h)
        with pytest.raises(ValueError):
            a.free(h)

    def test_nonpositive_size_rejected(self):
        a = DeviceAllocator(1 << 20)
        with pytest.raises(ValueError):
            a.malloc(0)

    def test_coalescing_allows_reuse(self):
        a = DeviceAllocator(1024, alignment=1)
        h1 = a.malloc(512)
        h2 = a.malloc(512)
        a.free(h1)
        a.free(h2)
        # after coalescing, a full-capacity allocation must succeed
        h3 = a.malloc(1024)
        assert h3.size == 1024
        a.free(h3)
        a.check_invariants()

    def test_peak_tracking(self):
        a = DeviceAllocator(1 << 20, alignment=1)
        h1 = a.malloc(1000)
        h2 = a.malloc(2000)
        a.free(h1)
        assert a.peak_bytes == 3000

    def test_allocation_charges_time(self):
        a = DeviceAllocator(1 << 20)
        a.malloc(100)
        assert a.simulated_time == pytest.approx(a.alloc_latency)

    @settings(max_examples=50)
    @given(st.lists(st.integers(min_value=1, max_value=5000), min_size=1, max_size=40))
    def test_invariants_under_random_workload(self, sizes):
        a = DeviceAllocator(1 << 20, alignment=64)
        live = []
        for i, size in enumerate(sizes):
            live.append(a.malloc(size))
            if i % 3 == 2:
                a.free(live.pop(0))
            a.check_invariants()
        for h in live:
            a.free(h)
        a.check_invariants()
        assert a.bytes_in_use == 0


class TestPoolAllocator:
    def test_pool_is_far_cheaper_than_native(self):
        backing = DeviceAllocator(1 << 30)
        pool = PoolAllocator(backing, initial_block=1 << 20)
        for _ in range(1000):
            h = pool.malloc(4096)
            pool.free(h)
        # 2000 native calls would cost 2000*30us = 60ms; pool must be ~100x less
        native_cost = 2000 * backing.alloc_latency
        assert pool.simulated_time < native_cost / 50

    def test_pool_grows_on_overflow(self):
        backing = DeviceAllocator(1 << 30)
        pool = PoolAllocator(backing, initial_block=1 << 16, grow_block=1 << 16)
        handles = [pool.malloc(1 << 14) for _ in range(10)]
        assert pool.native_alloc_calls > 1
        for h in handles:
            pool.free(h)

    def test_release_returns_memory(self):
        backing = DeviceAllocator(1 << 30)
        pool = PoolAllocator(backing, initial_block=1 << 20)
        h = pool.malloc(100)
        pool.free(h)
        pool.release()
        assert backing.bytes_in_use == 0

    def test_release_with_live_allocations_rejected(self):
        backing = DeviceAllocator(1 << 30)
        pool = PoolAllocator(backing, initial_block=1 << 20)
        pool.malloc(100)
        with pytest.raises(RuntimeError):
            pool.release()

    def test_native_call_count_stays_small(self):
        backing = DeviceAllocator(1 << 30)
        pool = PoolAllocator(backing, initial_block=1 << 24)
        for _ in range(500):
            h = pool.malloc(1 << 12)
            pool.free(h)
        assert pool.native_alloc_calls == 1
        assert pool.alloc_calls == 500


class TestUnifiedMemory:
    def test_first_device_touch_migrates(self):
        uvm = UnifiedMemory(link_bandwidth=50e9)
        uvm.register("state", 100 << 20, location="host")
        t = uvm.touch("state", "device")
        assert t > 0
        assert uvm.location("state") == "device"
        assert uvm.stats.migrated_bytes == 100 << 20

    def test_repeated_same_side_touch_is_free(self):
        uvm = UnifiedMemory(link_bandwidth=50e9)
        uvm.register("state", 1 << 20, location="device")
        assert uvm.touch("state", "device") == 0.0
        assert uvm.stats.faults == 0

    def test_pingpong_costs_double(self):
        uvm = UnifiedMemory(link_bandwidth=50e9)
        uvm.register("state", 64 << 20, location="host")
        t1 = uvm.touch("state", "device")
        t2 = uvm.touch("state", "host")
        assert uvm.stats.fault_time == pytest.approx(t1 + t2)

    def test_unregistered_touch_raises(self):
        uvm = UnifiedMemory(link_bandwidth=50e9)
        with pytest.raises(KeyError):
            uvm.touch("ghost", "device")

    def test_bad_side_rejected(self):
        uvm = UnifiedMemory(link_bandwidth=50e9)
        uvm.register("x", 1024)
        with pytest.raises(ValueError):
            uvm.touch("x", "disk")

    def test_fault_count_is_page_granular(self):
        uvm = UnifiedMemory(link_bandwidth=50e9)
        uvm.register("x", uvm.page_size * 3 + 1, location="host")
        uvm.touch("x", "device")
        assert uvm.stats.faults == 4
