"""Property suite for the occupancy/roofline stack the tuner searches.

The autotuner trusts gpu.occupancy/gpu.perfmodel across the whole knob
grid, including corners no app module ever visits (extreme register
counts, tiny workgroups, capped kernels).  These hypothesis properties
pin the invariants the search relies on:

* occupancy and timing are total functions — no NaN/inf/negative times
  anywhere on the valid domain;
* more registers never *increase* occupancy and never *decrease* time;
* larger workgroups never decrease occupancy of an LDS-bound kernel;
* latency hiding is monotone in waves in flight;
* `cap_registers` conserves work: flops/threads untouched, traffic only
  ever added, demand clamped to exactly the cap.

The suite also locks in the validation fix this PR made: KernelSpec used
to accept `registers_per_thread <= 0` and silently report full occupancy
(negative regs-per-wave floored to 1 allocation unit), which would have
let a buggy tuner candidate look infinitely good.
"""

import dataclasses
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.gpu import KernelSpec, cap_registers, time_kernel
from repro.gpu.occupancy import (
    compute_occupancy,
    latency_hiding_from_waves,
    spill_traffic_bytes,
)
from repro.hardware.gpu import MI250X_GCD, V100, Precision

DEVICES = [V100, MI250X_GCD]


@st.composite
def kernel_specs(draw):
    return KernelSpec(
        name="prop",
        flops=draw(st.floats(0.0, 1e15, allow_nan=False)),
        bytes_read=draw(st.floats(0.0, 1e13, allow_nan=False)),
        bytes_written=draw(st.floats(0.0, 1e13, allow_nan=False)),
        threads=draw(st.integers(1, 1 << 24)),
        precision=draw(st.sampled_from(
            [Precision.FP64, Precision.FP32, Precision.FP16])),
        registers_per_thread=draw(st.integers(1, 512)),
        lds_per_workgroup=draw(st.integers(0, 64 * 1024)),
        workgroup_size=draw(st.sampled_from([32, 64, 128, 256, 512, 1024])),
        active_lane_fraction=draw(st.floats(0.05, 1.0, allow_nan=False)),
        divergence_wavefront_sensitive=draw(st.booleans()),
        launch_count=draw(st.integers(1, 64)),
    )


class TestOccupancyProperties:
    @settings(max_examples=200)
    @given(kernel=kernel_specs(), device=st.sampled_from(DEVICES))
    def test_occupancy_well_formed(self, kernel, device):
        occ = compute_occupancy(kernel, device)
        assert 1 <= occ.waves_per_cu <= occ.max_waves_per_cu
        assert 0.0 < occ.occupancy <= 1.0
        assert occ.spilled_registers_per_thread >= 0
        assert occ.limited_by in {"registers", "lds", "hardware"}

    @settings(max_examples=200)
    @given(
        kernel=kernel_specs(),
        device=st.sampled_from(DEVICES),
        extra=st.integers(1, 256),
    )
    def test_more_registers_never_raise_occupancy(self, kernel, device, extra):
        fatter = dataclasses.replace(
            kernel,
            registers_per_thread=kernel.registers_per_thread + extra)
        assert (compute_occupancy(fatter, device).waves_per_cu
                <= compute_occupancy(kernel, device).waves_per_cu)

    @settings(max_examples=200)
    @given(
        kernel=kernel_specs(),
        device=st.sampled_from(DEVICES),
        factor=st.sampled_from([2, 4]),
    )
    def test_larger_workgroup_never_lowers_lds_bound_occupancy(
            self, kernel, device, factor):
        if kernel.lds_per_workgroup == 0:
            return  # workgroup size only enters through the LDS limit
        wider = dataclasses.replace(
            kernel, workgroup_size=kernel.workgroup_size * factor)
        assert (compute_occupancy(wider, device).waves_per_cu
                >= compute_occupancy(kernel, device).waves_per_cu)

    @given(waves=st.integers(1, 256))
    def test_latency_hiding_bounded_and_monotone(self, waves):
        f = latency_hiding_from_waves(waves)
        assert 0.0 < f <= 1.0
        assert latency_hiding_from_waves(waves + 1) >= f

    @settings(max_examples=200)
    @given(kernel=kernel_specs(), device=st.sampled_from(DEVICES))
    def test_spill_traffic_iff_over_ceiling(self, kernel, device):
        traffic = spill_traffic_bytes(kernel, device)
        over = kernel.registers_per_thread > device.max_registers_per_thread
        assert (traffic > 0) == over
        assert traffic >= 0.0


class TestTimingProperties:
    @settings(max_examples=200)
    @given(kernel=kernel_specs(), device=st.sampled_from(DEVICES))
    def test_times_finite_positive(self, kernel, device):
        t = time_kernel(kernel, device)
        for value in (t.compute_time, t.memory_time, t.launch_latency,
                      t.execution_time, t.total_time, t.effective_flops):
            assert math.isfinite(value)
            assert value >= 0.0
        assert t.total_time > 0.0  # launch latency is never free
        assert t.bound in {"compute", "memory"}

    @settings(max_examples=200)
    @given(
        kernel=kernel_specs(),
        device=st.sampled_from(DEVICES),
        extra=st.integers(1, 256),
    )
    def test_more_registers_never_speed_up(self, kernel, device, extra):
        """Lower occupancy and (past the ceiling) spill traffic can only
        hurt — the inequality the register-cap knob exploits."""
        fatter = dataclasses.replace(
            kernel,
            registers_per_thread=kernel.registers_per_thread + extra)
        assert (time_kernel(fatter, device).total_time
                >= time_kernel(kernel, device).total_time)


class TestCapRegistersProperties:
    @settings(max_examples=200)
    @given(
        kernel=kernel_specs(),
        cap=st.integers(32, 512),
    )
    def test_cap_conserves_work(self, kernel, cap):
        capped = cap_registers(kernel, cap)
        assert capped.flops == kernel.flops
        assert capped.threads == kernel.threads
        assert capped.launch_count == kernel.launch_count
        assert capped.registers_per_thread == min(
            cap, kernel.registers_per_thread)
        assert capped.bytes_read >= kernel.bytes_read
        assert capped.bytes_written >= kernel.bytes_written

    @settings(max_examples=100)
    @given(kernel=kernel_specs(), cap=st.integers(32, 512))
    def test_cap_at_or_above_demand_is_identity(self, kernel, cap):
        if cap >= kernel.registers_per_thread:
            assert cap_registers(kernel, cap) is kernel

    def test_cap_below_floor_rejected(self):
        k = KernelSpec(name="k", flops=1e9, bytes_read=1e6)
        with pytest.raises(ValueError, match="cap"):
            cap_registers(k, 16)


class TestValidationFix:
    """KernelSpec used to accept non-positive register counts and report
    full occupancy for them; that is now a construction-time error."""

    @given(regs=st.integers(-512, 0))
    def test_nonpositive_registers_rejected(self, regs):
        with pytest.raises(ValueError, match="register"):
            KernelSpec(name="bad", flops=1.0, bytes_read=1.0,
                       registers_per_thread=regs)

    def test_negative_lds_rejected(self):
        with pytest.raises(ValueError, match="lds"):
            KernelSpec(name="bad", flops=1.0, bytes_read=1.0,
                       lds_per_workgroup=-1)
