"""Direct unit tests for the GPU launch-trace exporter and its stats.

:mod:`repro.gpu.trace` feeds the merged observability timeline, so its
arithmetic — event timestamps, gap detection, utilization — gets pinned
here against hand-built launch records with known intervals, not just
whatever a live device happens to produce.
"""

import json

import pytest

from repro.gpu.device import Device, LaunchRecord
from repro.gpu.kernel import KernelSpec
from repro.gpu.perfmodel import time_kernel
from repro.gpu.trace import TimelineStats, timeline_stats, to_chrome_trace
from repro.hardware.catalog import FRONTIER
from repro.hardware.gpu import V100, Precision


def _kernel(flops: float = 1e9) -> KernelSpec:
    return KernelSpec(name="k", flops=flops, bytes_read=1e6,
                      bytes_written=1e6, threads=4096,
                      precision=Precision.FP64)


def _record(device: Device, start: float, dur: float, *,
            name: str = "k", stream: int = 0) -> LaunchRecord:
    """A launch record with an exact (start, start+dur) interval."""
    import dataclasses

    timing = dataclasses.replace(time_kernel(_kernel(), device.spec),
                                 compute_time=dur, memory_time=0.0)
    return LaunchRecord(kernel=name, stream_id=stream, enqueued_at=start,
                        completes_at=start + dur, timing=timing)


class TestChromeTraceExport:
    def test_events_carry_microsecond_intervals(self):
        device = Device(FRONTIER.node.gpu, device_id=3)
        device.trace.append(_record(device, 0.5, 0.25, name="gemm"))
        data = json.loads(to_chrome_trace(device))
        assert data["displayTimeUnit"] == "ms"
        meta, event = data["traceEvents"]
        assert meta["ph"] == "M" and meta["pid"] == 3
        assert "simulated-gpu" in meta["args"]["name"]
        assert event["name"] == "gemm" and event["ph"] == "X"
        assert event["ts"] == pytest.approx(0.5e6)
        assert event["dur"] == pytest.approx(0.25e6)
        assert {"bound", "occupancy", "enqueued_at_us"} <= set(event["args"])

    def test_process_name_override_and_stream_rows(self):
        device = Device(V100)
        device.trace.append(_record(device, 0.0, 1.0, stream=0))
        device.trace.append(_record(device, 2.0, 1.0, stream=5))
        data = json.loads(to_chrome_trace(device, process_name="lane"))
        meta = data["traceEvents"][0]
        assert meta["args"]["name"].startswith("lane")
        tids = [e["tid"] for e in data["traceEvents"] if e["ph"] == "X"]
        assert tids == [0, 5]

    def test_live_launches_produce_one_event_each(self):
        device = Device(V100)
        for _ in range(3):
            device.launch_sync(_kernel())
        data = json.loads(to_chrome_trace(device))
        xs = [e for e in data["traceEvents"] if e["ph"] == "X"]
        assert len(xs) == 3
        assert all(e["dur"] > 0 for e in xs)


class TestTimelineStats:
    def test_empty_trace_is_fully_utilized_by_convention(self):
        stats = timeline_stats(Device(V100))
        assert stats == TimelineStats(kernels=0, busy_time=0.0, span=0.0,
                                      largest_gap=0.0)
        assert stats.utilization == 1.0

    def test_known_gap_geometry(self):
        # [0,1] then [3,4] then [4.5,5]: gaps of 2.0 and 0.5
        device = Device(V100)
        device.trace.append(_record(device, 0.0, 1.0))
        device.trace.append(_record(device, 3.0, 1.0))
        device.trace.append(_record(device, 4.5, 0.5))
        stats = timeline_stats(device)
        assert stats.kernels == 3
        assert stats.busy_time == pytest.approx(2.5)
        assert stats.span == pytest.approx(5.0)
        assert stats.largest_gap == pytest.approx(2.0)
        assert stats.utilization == pytest.approx(0.5)

    def test_overlapping_streams_leave_no_gap(self):
        # [0,2] and [1,3] overlap: busy double-counts (per-stream work),
        # but there is no idle hole in the timeline
        device = Device(V100)
        device.trace.append(_record(device, 0.0, 2.0, stream=0))
        device.trace.append(_record(device, 1.0, 2.0, stream=1))
        stats = timeline_stats(device)
        assert stats.largest_gap == 0.0
        assert stats.span == pytest.approx(3.0)
        assert stats.busy_time == pytest.approx(4.0)

    def test_unsorted_trace_is_handled(self):
        device = Device(V100)
        device.trace.append(_record(device, 10.0, 1.0))
        device.trace.append(_record(device, 0.0, 1.0))
        stats = timeline_stats(device)
        assert stats.span == pytest.approx(11.0)
        assert stats.largest_gap == pytest.approx(9.0)

    def test_sync_launch_sequence_has_launch_latency_gaps(self):
        device = Device(FRONTIER.node.gpu)
        for _ in range(4):
            device.launch_sync(_kernel())
        stats = timeline_stats(device)
        assert stats.kernels == 4
        assert 0.0 < stats.utilization < 1.0
        assert stats.largest_gap > 0.0
