"""Tests for the COAST substrate: APSP, distributed FW, autotuner, graphs."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy.sparse.csgraph import floyd_warshall as scipy_fw

from repro.graph import (
    TileAutotuner,
    TileConfig,
    apsp_flops,
    blocked_floyd_warshall,
    discover_relationships,
    distributed_floyd_warshall,
    floyd_warshall,
    generate_knowledge_graph,
    kernel_for_config,
    minplus,
)
from repro.hardware.gpu import MI250X, V100
from repro.hardware.interconnect import SLINGSHOT_11


def random_dist_matrix(n: int, density: float, seed: int) -> np.ndarray:
    rng = np.random.default_rng(seed)
    d = np.where(rng.random((n, n)) < density, rng.uniform(1, 10, (n, n)), np.inf)
    return d


class TestFloydWarshall:
    def test_matches_scipy(self):
        d = random_dist_matrix(40, 0.15, 0)
        np.testing.assert_allclose(floyd_warshall(d), scipy_fw(d, directed=True))

    def test_blocked_matches_plain(self):
        d = random_dist_matrix(48, 0.2, 1)
        np.testing.assert_allclose(blocked_floyd_warshall(d, 12), floyd_warshall(d))

    def test_blocked_various_tiles(self):
        d = random_dist_matrix(24, 0.3, 2)
        ref = floyd_warshall(d)
        for tile in (1, 2, 4, 8, 24):
            np.testing.assert_allclose(blocked_floyd_warshall(d, tile), ref)

    def test_blocked_validates_tile(self):
        d = random_dist_matrix(10, 0.5, 3)
        with pytest.raises(ValueError):
            blocked_floyd_warshall(d, 3)
        with pytest.raises(ValueError):
            blocked_floyd_warshall(d, 0)

    def test_nonsquare_rejected(self):
        with pytest.raises(ValueError):
            floyd_warshall(np.ones((3, 4)))

    def test_minplus_is_semiring_gemm(self):
        a = np.array([[1.0, np.inf], [0.0, 2.0]])
        b = np.array([[0.5, 1.0], [1.0, np.inf]])
        c = minplus(a, b)
        assert c[0, 0] == pytest.approx(1.5)  # 1 + 0.5
        assert c[1, 1] == pytest.approx(1.0)  # 0 + 1

    def test_disconnected_stays_infinite(self):
        d = np.full((4, 4), np.inf)
        np.fill_diagonal(d, 0)
        d[0, 1] = 1.0
        r = floyd_warshall(d)
        assert np.isinf(r[0, 2])
        assert r[0, 1] == 1.0

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=4, max_value=24), st.integers(min_value=0, max_value=100))
    def test_property_vs_scipy(self, n, seed):
        d = random_dist_matrix(n, 0.3, seed)
        np.testing.assert_allclose(floyd_warshall(d), scipy_fw(d, directed=True))

    def test_flops_model(self):
        assert apsp_flops(100) == pytest.approx(2e6)


class TestDistributedFW:
    def test_matches_serial(self):
        d = random_dist_matrix(32, 0.25, 5)
        ref = floyd_warshall(d)
        res = distributed_floyd_warshall(d, grid=4, fabric=SLINGSHOT_11)
        np.testing.assert_allclose(res.dist, ref)
        assert res.elapsed > 0
        assert res.comm_time > 0

    def test_single_rank_grid(self):
        d = random_dist_matrix(16, 0.3, 6)
        res = distributed_floyd_warshall(d, grid=1, fabric=SLINGSHOT_11)
        np.testing.assert_allclose(res.dist, floyd_warshall(d))

    def test_compute_charging(self):
        d = random_dist_matrix(16, 0.3, 7)
        fast = distributed_floyd_warshall(d, grid=2, fabric=SLINGSHOT_11)
        slow = distributed_floyd_warshall(
            d, grid=2, fabric=SLINGSHOT_11, compute_time_per_tile_update=1.0
        )
        assert slow.elapsed > fast.elapsed + 1.0

    def test_validates_grid(self):
        d = random_dist_matrix(10, 0.3, 8)
        with pytest.raises(ValueError):
            distributed_floyd_warshall(d, grid=3, fabric=SLINGSHOT_11)


class TestAutotuner:
    def test_tuned_beats_naive_config(self):
        tuner = TileAutotuner(MI250X)
        result = tuner.tune(20000)
        naive = kernel_for_config(20000, TileConfig(16, 1, 8))
        from repro.gpu.perfmodel import time_kernel

        assert result.best_time <= time_kernel(naive, MI250X).total_time
        assert result.evaluated > 10

    def test_per_gpu_tflops_ratio_matches_paper(self):
        """§3.9: 5.6 TF on V100 → 30.6 TF on MI250X, a 5.5x kernel gain."""
        tv = TileAutotuner(V100).tune(40000)
        tm = TileAutotuner(MI250X).tune(40000)
        ratio = tm.best_tflops / tv.best_tflops
        assert 4.0 < ratio < 7.0

    def test_table_sorted(self):
        result = TileAutotuner(V100).tune(10000)
        times = [t for _, t in result.table]
        assert times == sorted(times)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            TileConfig(block_tile=16, thread_tile=32, k_tile=8)

    def test_empty_search_space(self):
        with pytest.raises(ValueError):
            TileAutotuner(V100, search_space=())


class TestKnowledgeGraph:
    def test_generation_shape(self):
        kg = generate_knowledge_graph(300, seed=0)
        assert kg.n_vertices == 300
        assert kg.n_edges > 300
        assert sum(kg.type_counts().values()) == 300

    def test_determinism(self):
        a = generate_knowledge_graph(100, seed=42)
        b = generate_knowledge_graph(100, seed=42)
        assert set(a.graph.edges()) == set(b.graph.edges())

    def test_distance_matrix_properties(self):
        kg = generate_knowledge_graph(60, seed=1)
        d = kg.distance_matrix()
        assert np.all(np.diag(d) == 0)
        assert d.shape == (60, 60)
        # symmetric (undirected graph)
        np.testing.assert_array_equal(d, d.T)

    def test_edges_typed(self):
        kg = generate_knowledge_graph(80, seed=2)
        for _, _, data in kg.graph.edges(data=True):
            assert "relation" in data and "weight" in data

    def test_discovery_excludes_direct_edges(self):
        kg = generate_knowledge_graph(120, seed=3)
        dist = floyd_warshall(kg.distance_matrix())
        found = discover_relationships(
            kg, dist, source_type="compound", target_type="disease",
            max_distance=6.0, top=20,
        )
        for u, v, dd in found:
            assert kg.vertex_type[u] == "compound"
            assert kg.vertex_type[v] == "disease"
            assert not kg.graph.has_edge(u, v)
            assert dd <= 6.0
        # sorted by distance
        dists = [t[2] for t in found]
        assert dists == sorted(dists)

    def test_too_small_rejected(self):
        with pytest.raises(ValueError):
            generate_knowledge_graph(1)
