"""Tests for the hardware catalog and spec arithmetic."""

import pytest

from repro.hardware import (
    ALL_CPUS,
    ALL_GPUS,
    ALL_MACHINES,
    CORI,
    CRUSHER,
    EARLY_ACCESS_PROGRESSION,
    FRONTIER,
    SPOCK,
    SUMMIT,
    GPUVendor,
    Precision,
    cpu_by_name,
    gpu_by_name,
    machine_by_name,
)
from repro.hardware.gpu import MI100, MI250X, MI250X_GCD, MI60, V100


class TestPrecision:
    def test_bytes_per_element(self):
        assert Precision.FP64.bytes_per_element == 8
        assert Precision.FP32.bytes_per_element == 4
        assert Precision.FP16.bytes_per_element == 2
        assert Precision.INT8.bytes_per_element == 1


class TestGPUSpecs:
    def test_v100_fp64_peak(self):
        assert V100.peak(Precision.FP64) == pytest.approx(7.8e12)

    def test_mi250x_is_two_gcds(self):
        assert MI250X.peak(Precision.FP64) == pytest.approx(
            2 * MI250X_GCD.peak(Precision.FP64)
        )
        assert MI250X.mem_bandwidth == pytest.approx(2 * MI250X_GCD.mem_bandwidth)

    def test_mi250x_vs_v100_fp64_ratio_matches_spec_sheets(self):
        # 47.9 / 7.8 ≈ 6.1 — the first-order source of the paper's speedups
        ratio = MI250X.peak(Precision.FP64) / V100.peak(Precision.FP64)
        assert 5.5 < ratio < 6.6

    def test_amd_wavefront_is_64(self):
        for gpu in (MI60, MI100, MI250X_GCD):
            assert gpu.wavefront_size == 64
        assert V100.wavefront_size == 32

    def test_matrix_engine_fallback_to_vector(self):
        # V100 has no FP64 tensor core: matrix request falls back to vector
        assert V100.peak(Precision.FP64, matrix=True) == V100.peak(Precision.FP64)
        # MI250X has FP64 MFMA at 2x vector
        assert MI250X_GCD.peak(Precision.FP64, matrix=True) == pytest.approx(
            2 * MI250X_GCD.peak(Precision.FP64), rel=0.01
        )

    def test_unknown_precision_raises(self):
        with pytest.raises(KeyError):
            V100.peak(Precision.INT8)

    def test_ridge_intensity_positive_and_ordered(self):
        # FP16 ridge must be higher than FP64 ridge (more flops per byte needed)
        assert V100.ridge_intensity(Precision.FP16) > V100.ridge_intensity(Precision.FP64)

    def test_effective_bandwidth_below_spec(self):
        for gpu in ALL_GPUS:
            assert 0 < gpu.effective_bandwidth < gpu.mem_bandwidth

    def test_lookup_by_name(self):
        assert gpu_by_name("V100") is V100
        with pytest.raises(KeyError):
            gpu_by_name("H100")


class TestCPUSpecs:
    def test_all_cpus_have_positive_specs(self):
        for cpu in ALL_CPUS:
            assert cpu.peak_flops_fp64 > 0
            assert cpu.effective_bandwidth > 0
            assert cpu.cores > 0

    def test_fp32_is_double_fp64(self):
        cpu = cpu_by_name("POWER9")
        assert cpu.peak(Precision.FP32) == pytest.approx(2 * cpu.peak(Precision.FP64))

    def test_unknown_cpu_raises(self):
        with pytest.raises(KeyError):
            cpu_by_name("Itanium")


class TestNodesAndMachines:
    def test_summit_node_configuration(self):
        assert SUMMIT.node.gpus_per_node == 6
        assert SUMMIT.node.gpu.name == "V100"
        assert SUMMIT.node.cpu_sockets == 2

    def test_frontier_node_has_eight_gcds(self):
        assert FRONTIER.node.gpus_per_node == 8
        assert "MI250X" in FRONTIER.node.gpu.name

    def test_frontier_exceeds_exaflop_fp64(self):
        assert FRONTIER.peak_flops(Precision.FP64) > 1e18

    def test_summit_peak_near_200pf(self):
        pf = SUMMIT.peak_flops(Precision.FP64) / 1e15
        assert 180 < pf < 230

    def test_frontier_node_vs_summit_node_ratio(self):
        # 8x 24 TF vs 6x 7.8 TF ≈ 4.1x per node — feeds Table 2
        ratio = FRONTIER.node.peak_flops() / SUMMIT.node.peak_flops()
        assert 3.5 < ratio < 4.8

    def test_cpu_machine_has_no_gpus(self):
        assert not CORI.node.has_gpus
        assert CORI.total_devices == 0
        assert CORI.node.peak_flops() > 0

    def test_crusher_matches_frontier_node_architecture(self):
        assert CRUSHER.node.gpu == FRONTIER.node.gpu
        assert CRUSHER.node.gpus_per_node == FRONTIER.node.gpus_per_node
        assert CRUSHER.nodes == 192

    def test_early_access_progression_ordering(self):
        gens = [m.generation for m in EARLY_ACCESS_PROGRESSION]
        assert gens == sorted(gens)
        assert EARLY_ACCESS_PROGRESSION[-1].name == "Crusher"

    def test_spock_uses_mi100_and_slingshot10(self):
        assert SPOCK.node.gpu.name == "MI100"
        assert "Slingshot-10" in SPOCK.node.interconnect.name

    def test_machine_lookup_case_insensitive(self):
        assert machine_by_name("frontier") is FRONTIER
        with pytest.raises(KeyError):
            machine_by_name("Aurora")

    def test_describe_mentions_name_and_nodes(self):
        text = SUMMIT.describe()
        assert "Summit" in text and "4608" in text

    def test_all_machines_have_interconnects(self):
        for m in ALL_MACHINES:
            assert m.node.interconnect is not None

    def test_gpu_vendor_split(self):
        assert SUMMIT.node.gpu.vendor is GPUVendor.NVIDIA
        assert FRONTIER.node.gpu.vendor is GPUVendor.AMD
