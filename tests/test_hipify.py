"""Tests for the CUDA→HIP source translator."""

import pytest
from hypothesis import given, strategies as st

from repro.progmodel import hipify, hipify_strict
from repro.progmodel.hipify import OUTDATED_PATTERNS, SPECIAL_RULES


class TestBasicTranslation:
    def test_runtime_calls(self):
        r = hipify("cudaMalloc(ptr, n); cudaMemcpyHostToDevice(ptr); cudaFree(ptr);")
        assert "hipMalloc" in r.translated
        assert "hipMemcpyHostToDevice" in r.translated
        assert "hipFree" in r.translated
        assert "cuda" not in r.translated
        assert r.clean

    def test_substitution_count(self):
        r = hipify("cudaMalloc(a); cudaMalloc(b); cudaFree(a);")
        assert r.substitutions == 3

    def test_library_mapping(self):
        r = hipify("cublasDgemm(handle, ...); cufftExecZ2Z(plan);")
        assert "hipblasDgemm" in r.translated
        assert "hipfftExecZ2Z" in r.translated

    def test_header_mapping(self):
        r = hipify('#include <cuda_runtime.h>')
        assert "hip/hip_runtime.h" in r.translated

    def test_deprecated_thread_api_modernized(self):
        r = hipify("cudaThreadSynchronize();")
        assert "hipDeviceSynchronize" in r.translated
        assert "hipThreadSynchronize" not in r.translated

    def test_driver_api_types(self):
        r = hipify("CUdeviceptr p; CUstream s;")
        assert "hipDeviceptr_t" in r.translated
        assert "hipStream_t" in r.translated

    def test_kernel_launch_chevrons(self):
        r = hipify("mykernel<<<grid, block>>>(a, b);")
        assert "hipLaunchKernelGGL(mykernel, grid, block, 0, 0, a, b);" in r.translated

    def test_kernel_launch_with_shmem_and_stream(self):
        r = hipify("k<<<g, b, 1024, s>>>(x);")
        assert "hipLaunchKernelGGL(k, g, b, 1024, s, x);" in r.translated

    def test_plain_text_untouched(self):
        src = "int main() { return 0; }"
        r = hipify(src)
        assert r.translated == src
        assert r.substitutions == 0
        assert r.automatic_fraction == 1.0


class TestDiagnostics:
    def test_texture_reference_flagged(self):
        r = hipify("texture<float, 2> tex;\ncudaMalloc(p);")
        assert not r.clean
        assert r.diagnostics[0].line == 1
        assert "texture" in r.diagnostics[0].message
        # the convertible part is still converted
        assert "hipMalloc" in r.translated

    def test_cuda_graphs_flagged_and_left_alone(self):
        r = hipify("cudaGraphLaunch(g, s);")
        assert not r.clean
        assert "cudaGraphLaunch" in r.translated  # untouched

    def test_old_shfl_flagged(self):
        r = hipify("v = __shfl(v, lane);")
        assert any("__shfl_sync" in d.message for d in r.diagnostics)

    def test_automatic_fraction(self):
        r = hipify("cudaMalloc(a);\ntexture<float> t;")
        assert 0.0 < r.automatic_fraction < 1.0

    def test_strict_raises_on_outdated(self):
        with pytest.raises(ValueError, match="manual intervention"):
            hipify_strict("cudaBindTexture(t, p);")

    def test_strict_passes_clean_source(self):
        out = hipify_strict("cudaDeviceSynchronize();")
        assert out == "hipDeviceSynchronize();"


class TestProperties:
    def test_idempotent_on_translated_output(self):
        src = "cudaMalloc(a); cublasDgemm(h); k<<<g,b>>>(x);"
        once = hipify(src).translated
        twice = hipify(once).translated
        assert once == twice

    @given(st.sampled_from(sorted(SPECIAL_RULES)))
    def test_every_special_rule_applies(self, name):
        r = hipify(f"x = {name}(arg);")
        assert SPECIAL_RULES[name] in r.translated

    @given(st.text(alphabet=st.characters(blacklist_categories=("Cs",)), max_size=200))
    def test_never_crashes(self, text):
        r = hipify(text)
        assert isinstance(r.translated, str)

    def test_word_boundary_respected(self):
        # identifiers merely containing 'cuda' mid-word stay intact
        r = hipify("mycudaHelper(); barracuda = 1;")
        assert "mycudaHelper" in r.translated
        assert "barracuda" in r.translated

    def test_all_outdated_patterns_have_messages(self):
        for msg in OUTDATED_PATTERNS.values():
            assert len(msg) > 10
