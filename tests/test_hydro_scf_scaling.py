"""Tests for the Euler/Cholla, LSMS SCF, scaling-law and roofline additions."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps import cholla
from repro.core import (
    amdahl_speedup,
    fit_amdahl,
    gustafson_speedup,
    scaling_study,
    weak_scaling_efficiency,
)
from repro.gpu import KernelSpec, place_kernel, roofline_curve, roofline_report
from repro.hardware.gpu import MI250X_GCD, V100, Precision
from repro.hydro import SOD_EXACT, Euler1D, sod_plateau_states
from repro.scattering import build_liz, scf_iterate


class TestEuler1D:
    @pytest.fixture(scope="class")
    def sod_run(self):
        solver = Euler1D.sod(800)
        solver.run_until(0.2)
        return solver

    def test_sod_star_pressure_and_velocity(self, sod_run):
        """p* and u* of the exact Riemann solution are hit to <2 %."""
        st_ = sod_plateau_states(sod_run)
        assert st_["p_star"] == pytest.approx(SOD_EXACT["p_star"], rel=0.02)
        assert st_["u_star"] == pytest.approx(SOD_EXACT["u_star"], rel=0.02)

    def test_sod_contact_densities(self, sod_run):
        """First-order HLL smears the contact: densities within ~15 %."""
        st_ = sod_plateau_states(sod_run)
        assert st_["rho_star_left"] == pytest.approx(
            SOD_EXACT["rho_star_left"], rel=0.15)
        assert st_["rho_star_right"] == pytest.approx(
            SOD_EXACT["rho_star_right"], rel=0.15)

    def test_contact_density_converges_with_resolution(self):
        errs = []
        for n in (200, 800):
            s = Euler1D.sod(n)
            s.run_until(0.2)
            st_ = sod_plateau_states(s)
            errs.append(abs(st_["rho_star_left"] - SOD_EXACT["rho_star_left"]))
        assert errs[1] < errs[0]

    def test_mass_exactly_conserved(self):
        s = Euler1D.sod(400)
        m0 = s.total_mass()
        s.run_until(0.15)
        assert s.total_mass() == pytest.approx(m0, rel=1e-12)

    def test_uniform_state_is_stationary(self):
        n = 64
        s = Euler1D(rho=np.ones(n), mom=np.zeros(n),
                    ener=np.full(n, 2.5), dx=1.0 / n)
        s.run_until(0.1)
        np.testing.assert_allclose(s.rho, 1.0, atol=1e-12)
        np.testing.assert_allclose(s.mom, 0.0, atol=1e-12)

    def test_validation(self):
        with pytest.raises(ValueError):
            Euler1D.sod(4)
        s = Euler1D.sod(64)
        with pytest.raises(ValueError):
            s.step(cfl=1.5)
        with pytest.raises(ValueError):
            s.run_until(-1.0)


class TestChollaApp:
    def test_single_source_runs_on_both_vendors(self):
        """§2.1: the code 'may remain in CUDA' yet run on AMD."""
        v = cholla.run_sod(V100, n_cells=200)
        m = cholla.run_sod(MI250X_GCD, n_cells=200)
        assert v.backend == "cuda"
        assert m.backend == "hip"
        # identical physics regardless of vendor
        for key in v.plateau:
            assert v.plateau[key] == pytest.approx(m.plateau[key], rel=1e-12)
        assert v.mass_error < 1e-12

    def test_hydro_speedup_tracks_bandwidth_ratio(self):
        """First-order hydro is memory-bound: ratio ≈ HBM bandwidths."""
        s = cholla.speedup()
        bw_ratio = MI250X_GCD.effective_bandwidth / V100.effective_bandwidth
        assert s == pytest.approx(bw_ratio, rel=0.15)


class TestScfLoop:
    @pytest.fixture(scope="class")
    def liz(self):
        return build_liz(1.0, 1.4, block_size=8)

    def test_converges(self, liz):
        r = scf_iterate(liz, target_moment=0.4)
        assert r.converged
        assert r.moment == pytest.approx(0.4, abs=1e-7)
        assert r.history.iterations < 50

    def test_solver_choice_does_not_change_physics(self, liz):
        """The §3.2 swap (zblock_lu → getrf) must be bit-compatible."""
        a = scf_iterate(liz, target_moment=0.4, method="getrf")
        b = scf_iterate(liz, target_moment=0.4, method="zblock_lu")
        assert a.potential_strength == pytest.approx(b.potential_strength,
                                                     abs=1e-6)

    def test_residuals_decay(self, liz):
        r = scf_iterate(liz, target_moment=0.4)
        res = r.history.residuals
        assert res[-1] < 1e-8
        assert res[-1] < res[0] / 100

    def test_nonconvergence_reported(self, liz):
        r = scf_iterate(liz, target_moment=0.4, max_iter=2)
        assert not r.converged

    def test_mixing_validated(self, liz):
        with pytest.raises(ValueError):
            scf_iterate(liz, mixing=0.0)


class TestScalingLaws:
    def test_amdahl_limits(self):
        assert amdahl_speedup(1, 0.1) == 1.0
        assert amdahl_speedup(10**6, 0.1) == pytest.approx(10.0, rel=0.01)
        assert amdahl_speedup(8, 0.0) == 8.0

    def test_gustafson_linear_when_fully_parallel(self):
        assert gustafson_speedup(64, 0.0) == 64.0
        assert gustafson_speedup(64, 1.0) == 1.0

    def test_fit_recovers_known_fraction(self):
        s_true = 0.07
        workers = [1, 2, 4, 8, 16, 32]
        speedups = [amdahl_speedup(p, s_true) for p in workers]
        fit = fit_amdahl(workers, speedups)
        assert fit.serial_fraction == pytest.approx(s_true, abs=1e-6)
        assert fit.rms_error < 1e-9

    @settings(max_examples=25)
    @given(st.floats(min_value=0.0, max_value=0.9))
    def test_fit_property(self, s_true):
        workers = [1, 2, 4, 8, 16]
        speedups = [amdahl_speedup(p, s_true) for p in workers]
        fit = fit_amdahl(workers, speedups)
        assert fit.serial_fraction == pytest.approx(s_true, abs=1e-4)

    def test_scaling_study_summary(self):
        times = {1: 100.0, 2: 52.0, 4: 28.0, 8: 16.0}
        st_ = scaling_study(times)
        assert st_["speedups"][0] == 1.0
        assert all(0 < e <= 1.0 for e in st_["efficiencies"])
        assert 0.0 <= st_["serial_fraction"] <= 1.0

    def test_weak_scaling_with_log_comm(self):
        eff = weak_scaling_efficiency(
            1024, compute_time=1.0, comm_time_fn=lambda p: 0.001 * np.log2(max(p, 2))
        )
        assert 0.97 < eff < 1.0

    def test_validation(self):
        with pytest.raises(ValueError):
            amdahl_speedup(0, 0.1)
        with pytest.raises(ValueError):
            amdahl_speedup(4, 1.5)
        with pytest.raises(ValueError):
            fit_amdahl([1], [1.0])
        with pytest.raises(ValueError):
            scaling_study({2: 50.0})


class TestRoofline:
    def test_curve_shape(self):
        curve = roofline_curve(MI250X_GCD)
        flops = [f for _, f in curve]
        assert all(a <= b + 1e-6 for a, b in zip(flops, flops[1:]))
        assert max(flops) == pytest.approx(MI250X_GCD.peak(Precision.FP64))

    def test_compute_bound_kernel_near_peak_roof(self):
        k = KernelSpec(name="gemm", flops=1e13, bytes_read=1e9,
                       registers_per_thread=64)
        pt = place_kernel(k, MI250X_GCD)
        assert pt.bound == "compute"
        assert pt.roof_flops == pytest.approx(MI250X_GCD.peak(Precision.FP64))
        assert 0.8 < pt.fraction_of_roof <= 1.0

    def test_memory_bound_kernel_on_slanted_roof(self):
        k = KernelSpec(name="triad", flops=1e8, bytes_read=2e9, bytes_written=1e9)
        pt = place_kernel(k, MI250X_GCD)
        assert pt.bound == "memory"
        assert pt.roof_flops < MI250X_GCD.peak(Precision.FP64) / 100

    def test_report_renders(self):
        ks = [KernelSpec(name="a", flops=1e12, bytes_read=1e9)]
        text = roofline_report(ks, V100)
        assert "Roofline on V100" in text
        assert "ridge" in text

    def test_curve_validation(self):
        with pytest.raises(ValueError):
            roofline_curve(V100, n_points=1)
