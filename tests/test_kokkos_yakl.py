"""Tests for the mini-Kokkos and mini-YAKL portability layers."""

import numpy as np
import pytest

from repro.gpu import KernelSpec
from repro.hardware.gpu import MI250X_GCD, V100
from repro.progmodel import kokkos as kk
from repro.progmodel import yakl


@pytest.fixture
def yakl_ctx():
    ctx = yakl.init(MI250X_GCD)
    yield ctx
    # drain leftover arrays defensively so one failure doesn't cascade
    if yakl.is_initialized():
        ctx.live_arrays = 0
        yakl.finalize()


class TestKokkosViews:
    def test_view_holds_real_data(self):
        v = kk.View("x", (4, 4))
        v[1, 2] = 7.0
        assert v[1, 2] == 7.0
        assert v.shape == (4, 4)

    def test_mirror_view(self):
        v = kk.View("x", 8, kk.DeviceSpace)
        m = v.mirror_view(kk.HostSpace)
        assert m.shape == v.shape
        assert m.space is kk.HostSpace

    def test_deep_copy_moves_data(self):
        src = kk.View("src", 16, kk.HostSpace)
        src.data[:] = np.arange(16)
        dst = src.mirror_view(kk.DeviceSpace)
        t = kk.deep_copy(dst, src, device_spec=V100)
        np.testing.assert_array_equal(dst.data, src.data)
        assert t > 0  # crossing spaces costs transfer time

    def test_deep_copy_same_space_free(self):
        a = kk.View("a", 16, kk.HostSpace)
        b = kk.View("b", 16, kk.HostSpace)
        assert kk.deep_copy(b, a, device_spec=V100) == 0.0

    def test_deep_copy_shape_mismatch(self):
        with pytest.raises(kk.KokkosError):
            kk.deep_copy(kk.View("a", 4), kk.View("b", 5))


class TestKokkosDispatch:
    def test_parallel_for_serial(self):
        v = kk.View("x", 100)
        kk.parallel_for(kk.Serial(), 100, lambda i: v.__setitem__(i, i * i), views=(v,))
        assert v[10] == 100

    def test_parallel_reduce(self):
        total = kk.parallel_reduce(kk.Serial(), 100, lambda i: float(i))
        assert total == sum(range(100))

    def test_device_space_not_accessible_from_serial(self):
        v = kk.View("x", 10, kk.DeviceSpace)
        with pytest.raises(kk.KokkosError, match="not accessible"):
            kk.parallel_for(kk.Serial(), 10, lambda i: None, views=(v,))

    def test_host_space_not_accessible_from_device(self):
        v = kk.View("x", 10, kk.HostSpace)
        hip = kk.HIP(MI250X_GCD)
        with pytest.raises(kk.KokkosError):
            kk.parallel_for(hip, 10, lambda i: None, views=(v,))

    def test_hostpinned_accessible_from_both(self):
        """The LargeBAR validation trick (§3.10.1): one allocation, both
        backends run the same kernel for fine-grained correctness checks."""
        v = kk.View("forces", 64, kk.HostPinnedSpace)

        def functor(i):
            v[i] = 2.0 * i

        kk.parallel_for(kk.Serial(), 64, functor, views=(v,))
        host_result = v.data.copy()

        v.data[:] = 0
        hip = kk.HIP(MI250X_GCD)
        kk.parallel_for(hip, 64, functor, views=(v,))
        np.testing.assert_array_equal(v.data, host_result)

    def test_device_dispatch_charges_time(self):
        hip = kk.HIP(MI250X_GCD)
        cost = KernelSpec(name="axpy", flops=1e10, bytes_read=1e8)
        kk.parallel_for(hip, 10, lambda i: None, cost=cost)
        hip.fence()
        assert hip.elapsed > 0

    def test_fence_counts(self):
        ex = kk.Serial()
        ex.fence()
        ex.fence()
        assert ex.fence_count == 2

    def test_negative_range_rejected(self):
        with pytest.raises(kk.KokkosError):
            kk.parallel_for(kk.Serial(), -1, lambda i: None)


class TestYakl:
    def test_init_finalize_cycle(self):
        ctx = yakl.init(MI250X_GCD)
        assert yakl.is_initialized()
        yakl.finalize()
        assert not yakl.is_initialized()
        # double finalize is an error
        with pytest.raises(yakl.YaklError):
            yakl.finalize()

    def test_double_init_rejected(self, yakl_ctx):
        with pytest.raises(yakl.YaklError):
            yakl.init(MI250X_GCD)

    def test_array_requires_init(self):
        with pytest.raises(yakl.YaklError):
            yakl.Array("x", 10)

    def test_c_style_indexing(self, yakl_ctx):
        a = yakl.Array("a", 3, 4)
        a[0, 0] = 1.0
        a[2, 3] = 5.0
        assert a[2, 3] == 5.0
        a.deallocate()

    def test_fortran_style_indexing(self, yakl_ctx):
        a = yakl.Array("a", 3, 4, fortran_style=True)
        a[1, 1] = 2.0  # Fortran is 1-based
        assert a[1, 1] == 2.0
        assert a.data[0, 0] == 2.0
        with pytest.raises(IndexError):
            a[0, 1]
        with pytest.raises(IndexError):
            a[4, 1]
        a.deallocate()

    def test_fortran_order_memory(self, yakl_ctx):
        a = yakl.Array("a", 8, 8, fortran_style=True)
        assert a.data.flags["F_CONTIGUOUS"]
        a.deallocate()

    def test_double_deallocate_rejected(self, yakl_ctx):
        a = yakl.Array("a", 4)
        a.deallocate()
        with pytest.raises(yakl.YaklError):
            a.deallocate()

    def test_finalize_detects_leaks(self):
        yakl.init(MI250X_GCD)
        a = yakl.Array("leaky", 10)
        with pytest.raises(yakl.YaklError, match="live arrays"):
            yakl.finalize()
        a.deallocate()
        yakl.finalize()

    def test_pool_time_far_below_native(self, yakl_ctx):
        """The E3SM claim: pooled device allocations are very cheap."""
        for _ in range(200):
            a = yakl.Array("tmp", 64, 64)
            a.deallocate()
        assert yakl_ctx.pool_time < yakl_ctx.native_time / 20


class TestInterop:
    def test_yakl_to_kokkos_zero_copy(self, yakl_ctx):
        a = yakl.Array("shared", 4, 4)
        view = yakl.view_from_ir(a.to_ir())
        view[2, 2] = 9.0
        assert a[2, 2] == 9.0  # same buffer
        a.deallocate()

    def test_kokkos_to_yakl(self, yakl_ctx):
        v = kk.View("kv", (2, 3), kk.DeviceSpace)
        v.data[:] = 1.5
        ir = yakl.ir_from_view(v)
        assert ir.on_device
        b = yakl.Array.from_ir(ir)
        assert b[0, 0] == 1.5
        b.deallocate()

    def test_ir_carries_shape_and_location(self, yakl_ctx):
        a = yakl.Array("x", 5, 6)
        ir = a.to_ir()
        assert ir.shape == (5, 6)
        assert ir.on_device
        a.deallocate()
