"""Tests for the BLAS/solver/batched/FFT library substrates."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gpu import time_kernel
from repro.hardware.gpu import MI250X_GCD
from repro.linalg import (
    GENERIC_GEMM_EFFICIENCY,
    SMALL_GEMM_EFFICIENCY,
    TUNED_GEMM_EFFICIENCY,
    TunedGemmLibrary,
    batched_gemm_kernel_spec,
    batched_lu_kernel_spec,
    batched_lu_solve,
    fft,
    fft_flops,
    fft_kernel_spec,
    gemm,
    gemm_flops,
    gemm_kernel_spec,
    getrf,
    getrf_flops,
    getrs,
    ifft,
    invert_first_block_lu,
    zblock_lu,
    zblock_lu_flops,
)


class TestGemm:
    def test_real_multiply(self):
        rng = np.random.default_rng(0)
        a, b = rng.normal(size=(8, 5)), rng.normal(size=(5, 7))
        np.testing.assert_allclose(gemm(a, b), a @ b)

    def test_complex_multiply(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))
        b = rng.normal(size=(4, 4)) + 1j * rng.normal(size=(4, 4))
        np.testing.assert_allclose(gemm(a, b), a @ b)

    def test_out_parameter(self):
        a, b = np.eye(3), np.ones((3, 3))
        out = np.empty((3, 3))
        res = gemm(a, b, out=out)
        assert res is out
        np.testing.assert_array_equal(out, b)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            gemm(np.ones((3, 4)), np.ones((5, 6)))

    def test_flop_count(self):
        assert gemm_flops(10, 20, 30) == 2 * 10 * 20 * 30
        assert gemm_flops(10, 20, 30, complex_data=True) == 8 * 10 * 20 * 30

    def test_kernel_spec_efficiency_inflates_flops(self):
        k_full = gemm_kernel_spec(1024, 1024, 1024, efficiency=1.0)
        k_half = gemm_kernel_spec(1024, 1024, 1024, efficiency=0.5)
        assert k_half.flops == pytest.approx(2 * k_full.flops)

    def test_kernel_spec_rejects_bad_efficiency(self):
        with pytest.raises(ValueError):
            gemm_kernel_spec(10, 10, 10, efficiency=0.0)


class TestTunedGemmLibrary:
    def test_tuned_shape_is_faster(self):
        """§4: libraries tuned for communicated problem sizes win."""
        lib = TunedGemmLibrary(MI250X_GCD)
        t_generic = lib.time(4096, 4096, 4096)
        lib.register_tuned_shape(4096, 4096, 4096)
        t_tuned = lib.time(4096, 4096, 4096)
        assert t_tuned < t_generic
        expected = GENERIC_GEMM_EFFICIENCY / TUNED_GEMM_EFFICIENCY
        assert t_tuned / t_generic == pytest.approx(expected, rel=0.15)

    def test_small_shapes_are_launch_limited(self):
        lib = TunedGemmLibrary(MI250X_GCD)
        assert lib.efficiency_for(32, 32, 32) == SMALL_GEMM_EFFICIENCY
        lib.register_tuned_shape(32, 32, 32)
        # tuning cannot rescue a tiny GEMM
        assert lib.efficiency_for(32, 32, 32) == SMALL_GEMM_EFFICIENCY

    def test_hit_counters(self):
        lib = TunedGemmLibrary(MI250X_GCD)
        lib.register_tuned_shape(512, 512, 512)
        lib.kernel_spec(512, 512, 512)
        lib.kernel_spec(513, 512, 512)
        assert lib.tuned_hits == 1
        assert lib.generic_hits == 1

    def test_batched_gemm_beats_looped_small_gemms(self):
        """The MAGMA batching story: one big launch beats many tiny ones."""
        batch, n = 1000, 32
        spec_batched = batched_gemm_kernel_spec(batch, n, n, n)
        t_batched = time_kernel(spec_batched, MI250X_GCD).total_time
        single = gemm_kernel_spec(n, n, n, efficiency=SMALL_GEMM_EFFICIENCY)
        t_single = time_kernel(single, MI250X_GCD).total_time
        assert t_batched < batch * t_single

    def test_batched_gemm_validates(self):
        with pytest.raises(ValueError):
            batched_gemm_kernel_spec(0, 8, 8, 8)


class TestSolvers:
    def test_getrf_getrs_roundtrip(self):
        rng = np.random.default_rng(2)
        a = rng.normal(size=(20, 20)) + 1j * rng.normal(size=(20, 20))
        b = rng.normal(size=20) + 1j * rng.normal(size=20)
        x = getrs(getrf(a), b)
        np.testing.assert_allclose(a @ x, b, atol=1e-10)

    def test_getrf_rejects_nonsquare(self):
        with pytest.raises(ValueError):
            getrf(np.ones((3, 4)))

    def test_zblock_lu_matches_direct_inverse(self):
        """The LSMS correctness anchor: zblock_lu computes the same leading
        block of the inverse as the full-LU library path."""
        rng = np.random.default_rng(3)
        n, b = 48, 12
        a = rng.normal(size=(n, n)) + 1j * rng.normal(size=(n, n)) + 5 * np.eye(n)
        expected = np.linalg.inv(a)[:b, :b]
        np.testing.assert_allclose(zblock_lu(a, b), expected, atol=1e-8)
        np.testing.assert_allclose(invert_first_block_lu(a, b), expected, atol=1e-8)

    def test_zblock_lu_validates(self):
        a = np.eye(10)
        with pytest.raises(ValueError):
            zblock_lu(a, 3)  # 10 not divisible by 3
        with pytest.raises(ValueError):
            zblock_lu(a, 0)

    def test_zblock_lu_has_fewer_flops_than_full_lu(self):
        """§3.2: 'the zblock_lu algorithm has a slightly lower total
        floating point operation count'."""
        n, b = 2048, 32
        full = getrf_flops(n) + 4 * 2 * n * n * b  # factor + solve for b rhs
        block = zblock_lu_flops(n, b)
        assert block < full
        assert block > 0.3 * full  # but not wildly fewer

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=1, max_value=4))
    def test_zblock_lu_property_random_blocks(self, nblocks):
        rng = np.random.default_rng(nblocks)
        b = 6
        n = b * (nblocks + 1)
        a = rng.normal(size=(n, n)) + (n + 2) * np.eye(n)
        np.testing.assert_allclose(
            zblock_lu(a, b), np.linalg.inv(a)[:b, :b], atol=1e-8
        )


class TestBatchedLU:
    def test_batched_solve_correct(self):
        rng = np.random.default_rng(4)
        mats = rng.normal(size=(16, 5, 5)) + 5 * np.eye(5)
        rhs = rng.normal(size=(16, 5))
        x = batched_lu_solve(mats, rhs)
        for i in range(16):
            np.testing.assert_allclose(mats[i] @ x[i], rhs[i], atol=1e-10)

    def test_batched_shape_validation(self):
        with pytest.raises(ValueError):
            batched_lu_solve(np.ones((4, 3, 2)), np.ones((4, 3)))
        with pytest.raises(ValueError):
            batched_lu_solve(np.ones((4, 3, 3)), np.ones((5, 3)))

    def test_batched_kernel_efficiency_grows_with_batch(self):
        small = batched_lu_kernel_spec(1, 10)
        large = batched_lu_kernel_spec(100_000, 10)
        t_small = time_kernel(small, MI250X_GCD).total_time
        t_large = time_kernel(large, MI250X_GCD).total_time
        # per-system time must drop dramatically with batching
        assert t_large / 100_000 < t_small / 2


class TestFFT:
    def test_fft_roundtrip(self):
        rng = np.random.default_rng(5)
        x = rng.normal(size=64) + 1j * rng.normal(size=64)
        np.testing.assert_allclose(ifft(fft(x)), x, atol=1e-12)

    def test_fft_matches_numpy_along_axis(self):
        rng = np.random.default_rng(6)
        x = rng.normal(size=(4, 8)).astype(complex)
        np.testing.assert_allclose(fft(x, axis=0), np.fft.fft(x, axis=0))

    def test_fft_flops_formula(self):
        assert fft_flops(1024) == pytest.approx(5 * 1024 * 10)
        assert fft_flops(1024, batch=3) == pytest.approx(3 * 5 * 1024 * 10)
        with pytest.raises(ValueError):
            fft_flops(0)

    def test_fft_kernel_is_memory_bound(self):
        spec = fft_kernel_spec(1 << 20, batch=16)
        t = time_kernel(spec, MI250X_GCD)
        assert t.bound == "memory"
