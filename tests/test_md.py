"""Tests for the LAMMPS/ReaxFF substrate."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.md import (
    SimBox,
    angle_forces,
    angle_survivor_triples,
    brute_force_neighbors,
    build_bond_list,
    build_neighbor_list,
    cg,
    dual_cg,
    equilibrate_charges,
    hns_like_crystal,
    lj_forces,
    qeq_matrix,
    torsion_forces_naive,
    torsion_forces_preprocessed,
    torsion_survivor_tuples,
)
from repro.md.reaxff import _pair_alignment_force


@pytest.fixture(scope="module")
def crystal():
    x, box = hns_like_crystal(4, 4, 4, seed=1)
    return x, box


class TestNeighborLists:
    def test_cell_list_matches_brute_force(self, crystal):
        x, box = crystal
        assert build_neighbor_list(x, box, 2.0) == brute_force_neighbors(x, box, 2.0)

    def test_larger_cutoff(self, crystal):
        x, box = crystal
        assert build_neighbor_list(x, box, 3.1) == brute_force_neighbors(x, box, 3.1)

    def test_symmetry(self, crystal):
        x, box = crystal
        nb = build_neighbor_list(x, box, 2.0)
        for i, lst in enumerate(nb):
            for j in lst:
                assert i in nb[j]

    def test_bond_list_is_subset(self, crystal):
        x, box = crystal
        nb = build_neighbor_list(x, box, 3.0)
        bonds = build_bond_list(x, box, 1.8, nb)
        for i in range(len(x)):
            assert set(bonds[i]) <= set(nb[i])

    def test_minimum_image(self):
        box = SimBox(lengths=(10.0, 10.0, 10.0))
        d = box.minimum_image(np.array([9.0, -9.0, 4.0]))
        np.testing.assert_allclose(d, [-1.0, 1.0, 4.0])

    def test_invalid_box(self):
        with pytest.raises(ValueError):
            SimBox(lengths=(0.0, 1.0, 1.0))

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=50))
    def test_property_random_configs(self, seed):
        rng = np.random.default_rng(seed)
        box = SimBox(lengths=(6.0, 6.0, 6.0))
        x = rng.uniform(0, 6, size=(40, 3))
        assert build_neighbor_list(x, box, 1.5) == brute_force_neighbors(x, box, 1.5)


class TestTorsionKernels:
    def test_analytic_gradient_matches_finite_difference(self):
        rng = np.random.default_rng(3)
        rij, rkl = rng.normal(size=3) + 2, rng.normal(size=3) - 1
        e, gij, gkl = _pair_alignment_force(rij, rkl, 0.37)
        eps = 1e-6
        for d in range(3):
            step = eps * np.eye(3)[d]
            num_ij = (_pair_alignment_force(rij + step, rkl, 0.37)[0] - e) / eps
            num_kl = (_pair_alignment_force(rij, rkl + step, 0.37)[0] - e) / eps
            assert num_ij == pytest.approx(gij[d], abs=1e-5)
            assert num_kl == pytest.approx(gkl[d], abs=1e-5)

    def test_preprocessed_matches_naive_exactly(self, crystal):
        """The §3.10.2 optimization is bit-identical physics."""
        x, box = crystal
        nb = build_neighbor_list(x, box, 3.0)
        bonds = build_bond_list(x, box, 1.8, nb)
        e1, f1, _ = torsion_forces_naive(x, box, nb, bonds, cutoff=1.9)
        tuples = torsion_survivor_tuples(x, box, nb, bonds, cutoff=1.9)
        e2, f2 = torsion_forces_preprocessed(x, box, tuples)
        assert e1 == pytest.approx(e2, abs=1e-12)
        np.testing.assert_allclose(f1, f2, atol=1e-12)

    def test_divergence_is_severe(self, crystal):
        """Wide neighbor list + tight bonding = few active lanes (Alg. 1)."""
        x, box = crystal
        nb = build_neighbor_list(x, box, 3.2)
        bonds = build_bond_list(x, box, 1.7, build_neighbor_list(x, box, 1.7))
        _, _, stats = torsion_forces_naive(x, box, nb, bonds, cutoff=1.7)
        assert stats.active_fraction < 0.5
        assert stats.survivors > 0

    def test_survivor_tuples_all_distinct(self, crystal):
        x, box = crystal
        nb = build_neighbor_list(x, box, 3.0)
        bonds = build_bond_list(x, box, 1.8, nb)
        for i, j, k, l in torsion_survivor_tuples(x, box, nb, bonds, cutoff=1.9):
            assert len({i, j, k}) == 3 and l not in (i, j)

    def test_torsion_forces_sum_to_zero(self, crystal):
        """Internal forces: momentum conservation."""
        x, box = crystal
        nb = build_neighbor_list(x, box, 3.0)
        bonds = build_bond_list(x, box, 1.8, nb)
        _, f, _ = torsion_forces_naive(x, box, nb, bonds, cutoff=1.9)
        np.testing.assert_allclose(f.sum(axis=0), 0.0, atol=1e-10)

    def test_angle_kernels(self, crystal):
        x, box = crystal
        bonds = build_bond_list(x, box, 1.8, build_neighbor_list(x, box, 1.8))
        triples = angle_survivor_triples(x, box, bonds)
        assert triples
        e, f = angle_forces(x, box, triples)
        np.testing.assert_allclose(f.sum(axis=0), 0.0, atol=1e-10)
        for i, j, k in triples:
            assert i != j and j != k and i < k


class TestLennardJones:
    def test_forces_sum_to_zero(self, crystal):
        x, box = crystal
        nb = build_neighbor_list(x, box, 2.5)
        _, f = lj_forces(x, box, nb)
        np.testing.assert_allclose(f.sum(axis=0), 0.0, atol=1e-10)

    def test_minimum_at_two_sixth_sigma(self):
        box = SimBox(lengths=(20.0, 20.0, 20.0))
        r_min = 2.0 ** (1 / 6)
        x = np.array([[5.0, 5.0, 5.0], [5.0 + r_min, 5.0, 5.0]])
        _, f = lj_forces(x, box, [[1], [0]])
        np.testing.assert_allclose(f, 0.0, atol=1e-10)

    def test_repulsive_inside_minimum(self):
        box = SimBox(lengths=(20.0, 20.0, 20.0))
        x = np.array([[5.0, 5.0, 5.0], [6.0, 5.0, 5.0]])
        _, f = lj_forces(x, box, [[1], [0]])
        assert f[0, 0] < 0 and f[1, 0] > 0  # pushed apart


class TestQeq:
    @pytest.fixture(scope="class")
    def system(self):
        x, box = hns_like_crystal(3, 3, 3, seed=2)
        chi = np.random.default_rng(5).uniform(-1, 1, len(x))
        return x, box, chi

    def test_matrix_is_spd(self, system):
        x, box, _ = system
        H = qeq_matrix(x, box)
        np.testing.assert_allclose(H, H.T)
        assert np.linalg.eigvalsh(H)[0] > 0

    def test_cg_solves(self, system):
        x, box, chi = system
        H = qeq_matrix(x, box)
        s, stats = cg(H, -chi)
        np.testing.assert_allclose(H @ s, -chi, atol=1e-7)
        assert stats.iterations > 0

    def test_dual_cg_matches_separate(self, system):
        x, box, chi = system
        H = qeq_matrix(x, box)
        ones = np.ones(len(x))
        s1, _ = cg(H, -chi)
        t1, _ = cg(H, -ones)
        s2, t2, _ = dual_cg(H, -chi, -ones)
        np.testing.assert_allclose(s1, s2, atol=1e-7)
        np.testing.assert_allclose(t1, t2, atol=1e-7)

    def test_fused_halves_matrix_reads_and_allreduces(self, system):
        """The Aktulga bandwidth/communication saving (§3.10.2)."""
        x, box, chi = system
        fused = equilibrate_charges(x, box, chi, fused=True)
        separate = equilibrate_charges(x, box, chi, fused=False)
        assert fused.stats.matrix_reads <= 0.6 * separate.stats.matrix_reads
        assert fused.stats.allreduces <= 0.6 * separate.stats.allreduces
        np.testing.assert_allclose(fused.charges, separate.charges, atol=1e-6)

    def test_charges_sum_to_zero(self, system):
        x, box, chi = system
        r = equilibrate_charges(x, box, chi)
        assert abs(r.charges.sum()) < 1e-8

    def test_chi_shape_validated(self, system):
        x, box, _ = system
        with pytest.raises(ValueError):
            equilibrate_charges(x, box, np.zeros(3))
