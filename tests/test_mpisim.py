"""Tests for the MPI simulator: cost models, topology, communicator."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.hardware.interconnect import IB_EDR_DUAL, SLINGSHOT_11
from repro.mpisim import (
    BlockDecomposition,
    CommError,
    DecompositionError,
    PencilDecomposition,
    SimComm,
    SlabDecomposition,
    Topology,
    allgather_time,
    allreduce_time,
    alltoall_time,
    balanced_pencil_grid,
    barrier_time,
    bcast_time,
    link_parameters,
    ranks_per_nic,
)


class TestCostModel:
    def test_p2p_latency_dominates_small_messages(self):
        link = link_parameters(SLINGSHOT_11)
        assert link.p2p_time(8) == pytest.approx(link.alpha, rel=0.01)

    def test_p2p_bandwidth_dominates_large_messages(self):
        link = link_parameters(SLINGSHOT_11)
        t = link.p2p_time(1 << 30)
        assert t == pytest.approx((1 << 30) * link.beta, rel=0.01)

    def test_nic_sharing_halves_bandwidth(self):
        solo = link_parameters(SLINGSHOT_11, ranks_sharing_nic=1)
        shared = link_parameters(SLINGSHOT_11, ranks_sharing_nic=2)
        assert shared.beta == pytest.approx(2 * solo.beta)

    def test_gpu_aware_faster_than_staged(self):
        aware = link_parameters(SLINGSHOT_11, device_buffers=True)
        import dataclasses
        not_aware_fabric = dataclasses.replace(SLINGSHOT_11, gpu_aware=False)
        staged = link_parameters(not_aware_fabric, device_buffers=True)
        assert aware.p2p_time(1 << 24) < staged.p2p_time(1 << 24)

    def test_ranks_per_nic(self):
        assert ranks_per_nic(8, SLINGSHOT_11) == 2  # 8 ranks / 4 NICs
        assert ranks_per_nic(6, IB_EDR_DUAL) == 3

    def test_collectives_scale_logarithmically_or_linearly(self):
        link = link_parameters(SLINGSHOT_11)
        assert bcast_time(1024, 1 << 20, link) > bcast_time(16, 1 << 20, link)
        assert alltoall_time(64, 1 << 10, link) > allreduce_time(64, 1 << 10, link)

    def test_single_rank_collectives_free(self):
        link = link_parameters(SLINGSHOT_11)
        assert bcast_time(1, 100, link) == 0.0
        assert allreduce_time(1, 100, link) == 0.0
        assert barrier_time(1, link) == 0.0

    def test_allreduce_picks_cheaper_algorithm(self):
        link = link_parameters(SLINGSHOT_11)
        # large payloads: Rabenseifner bandwidth term must win over
        # recursive doubling's log(p) full-payload sends
        p, n = 1024, 1 << 26
        rd = np.ceil(np.log2(p)) * link.p2p_time(n)
        assert allreduce_time(p, n, link) < rd

    @given(st.integers(min_value=2, max_value=4096), st.integers(min_value=8, max_value=1 << 22))
    def test_allgather_grows_with_ranks(self, p, n):
        link = link_parameters(SLINGSHOT_11)
        assert allgather_time(p + 1, n, link) >= allgather_time(p, n, link)


class TestTopology:
    def test_node_mapping(self):
        topo = Topology(nranks=16, ranks_per_node=8, fabric=SLINGSHOT_11)
        assert topo.nnodes == 2
        assert topo.node_of(0) == 0
        assert topo.node_of(8) == 1
        assert topo.same_node(0, 7)
        assert not topo.same_node(7, 8)

    def test_intranode_faster_than_internode(self):
        topo = Topology(nranks=16, ranks_per_node=8, fabric=SLINGSHOT_11)
        intra = topo.link(0, 1)
        inter = topo.link(0, 8)
        n = 1 << 20
        assert intra.p2p_time(n) < inter.p2p_time(n)

    def test_rank_out_of_range(self):
        topo = Topology(nranks=4, ranks_per_node=2, fabric=SLINGSHOT_11)
        with pytest.raises(ValueError):
            topo.node_of(4)


class TestSimComm:
    def test_bcast_data_semantics(self):
        comm = SimComm(4, SLINGSHOT_11)
        out = comm.bcast(np.arange(3), nbytes=24)
        assert len(out) == 4
        for v in out:
            np.testing.assert_array_equal(v, [0, 1, 2])
        assert comm.elapsed > 0

    def test_allreduce_sums(self):
        comm = SimComm(8, SLINGSHOT_11)
        out = comm.allreduce([float(r) for r in range(8)], nbytes=8)
        assert all(v == sum(range(8)) for v in out)

    def test_allreduce_with_arrays(self):
        comm = SimComm(4, SLINGSHOT_11)
        vals = [np.full(5, r, dtype=float) for r in range(4)]
        out = comm.allreduce(vals, nbytes=40)
        np.testing.assert_array_equal(out[0], np.full(5, 6.0))

    def test_alltoall_transposes_payloads(self):
        comm = SimComm(3, SLINGSHOT_11)
        matrix = [[f"{src}->{dst}" for dst in range(3)] for src in range(3)]
        out = comm.alltoall(matrix, nbytes_per_pair=8)
        assert out[1][2] == "2->1"  # receiver 1's slot from sender 2
        assert out[0] == ["0->0", "1->0", "2->0"]

    def test_allgather(self):
        comm = SimComm(4, SLINGSHOT_11)
        out = comm.allgather([r * 10 for r in range(4)], nbytes=8)
        assert out[2] == [0, 10, 20, 30]

    def test_gather_and_scatter(self):
        comm = SimComm(4, SLINGSHOT_11)
        gathered = comm.gather(list(range(4)), nbytes=8)
        assert gathered == [0, 1, 2, 3]
        scattered = comm.scatter([10, 20, 30, 40], nbytes=8)
        assert scattered[3] == 40

    def test_reduce(self):
        comm = SimComm(4, SLINGSHOT_11)
        assert comm.reduce([1.0, 2.0, 3.0, 4.0], nbytes=8) == 10.0

    def test_sendrecv_synchronizes_pair(self):
        comm = SimComm(4, SLINGSHOT_11, ranks_per_node=2)
        comm.advance(0, 1.0)
        payload = comm.sendrecv(0, 2, "hello", nbytes=1024)
        assert payload == "hello"
        assert comm.clocks[2] == comm.clocks[0]
        assert comm.clocks[2] > 1.0
        assert comm.clocks[1] == 0.0  # uninvolved rank unaffected

    def test_nonblocking_overlap(self):
        comm = SimComm(2, SLINGSHOT_11)
        op = comm.isendrecv(0, 1, nbytes=1 << 26)
        comm.advance(0, 10.0)  # compute while the message flies
        op.wait()
        # the transfer finished long before the compute did
        assert comm.clocks[0] == pytest.approx(10.0)

    def test_collective_synchronizes_clocks(self):
        comm = SimComm(4, SLINGSHOT_11)
        comm.advance(2, 5.0)  # straggler
        comm.barrier()
        assert np.all(comm.clocks >= 5.0)
        assert np.ptp(comm.clocks) == pytest.approx(0.0)

    def test_load_imbalance_metric(self):
        comm = SimComm(4, SLINGSHOT_11)
        comm.advance_all(1.0)
        assert comm.load_imbalance() == pytest.approx(1.0)
        comm.advance(0, 1.0)
        assert comm.load_imbalance() > 1.0

    def test_stats_accumulate(self):
        comm = SimComm(4, SLINGSHOT_11)
        comm.bcast(1, nbytes=8)
        comm.sendrecv(0, 1, None, nbytes=64)
        assert comm.stats.collectives == 1
        assert comm.stats.p2p_messages == 1
        assert comm.stats.total_comm_time > 0

    def test_input_validation(self):
        comm = SimComm(4, SLINGSHOT_11)
        with pytest.raises(CommError):
            comm.allreduce([1, 2], nbytes=8)  # wrong count
        with pytest.raises(CommError):
            comm.sendrecv(1, 1, None, nbytes=8)
        with pytest.raises(CommError):
            comm.bcast(1, nbytes=8, root=9)
        with pytest.raises(CommError):
            comm.advance(0, -1.0)
        with pytest.raises(CommError):
            SimComm(0, SLINGSHOT_11)


class TestDecompositions:
    def test_slab_local_shape(self):
        d = SlabDecomposition(n=64, nranks=16)
        assert d.local_shape == (4, 64, 64)
        assert d.transposes_per_fft == 1

    def test_slab_rank_limit(self):
        with pytest.raises(DecompositionError, match="limited to"):
            SlabDecomposition(n=8, nranks=16)

    def test_slab_divisibility(self):
        with pytest.raises(DecompositionError):
            SlabDecomposition(n=10, nranks=3)

    def test_pencil_allows_n_squared_ranks(self):
        d = PencilDecomposition(n=16, prow=16, pcol=16)
        assert d.nranks == 256  # > N, impossible for slabs
        assert d.transposes_per_fft == 2

    def test_pencil_local_shape(self):
        d = PencilDecomposition(n=64, prow=4, pcol=8)
        assert d.local_shape == (16, 8, 64)

    def test_pencil_rank_limit(self):
        with pytest.raises(DecompositionError):
            PencilDecomposition(n=4, prow=8, pcol=4)

    def test_balanced_grid(self):
        prow, pcol = balanced_pencil_grid(64, 32)
        assert prow * pcol == 32
        assert 64 % prow == 0 and 64 % pcol == 0

    def test_balanced_grid_impossible(self):
        with pytest.raises(DecompositionError):
            balanced_pencil_grid(7, 4)

    def test_block_neighbors_periodic(self):
        d = BlockDecomposition(nx=8, ny=8, nz=8, px=2, py=2, pz=2)
        assert d.nranks == 8
        nbrs = d.neighbors(0)
        assert len(nbrs) == 6
        assert all(0 <= n < 8 for n in nbrs)

    def test_block_ghost_bytes(self):
        d = BlockDecomposition(nx=64, ny=64, nz=64, px=4, py=4, pz=4)
        b1 = d.ghost_bytes_per_exchange(ghost_width=1)
        b2 = d.ghost_bytes_per_exchange(ghost_width=2)
        assert b2 == pytest.approx(2 * b1)

    def test_block_divisibility(self):
        with pytest.raises(DecompositionError):
            BlockDecomposition(nx=10, ny=8, nz=8, px=3, py=2, pz=2)


class TestAlltoallv:
    def test_data_semantics(self):
        from repro.mpisim import SimComm

        comm = SimComm(3, SLINGSHOT_11)
        matrix = [[f"{s}->{d}" for d in range(3)] for s in range(3)]
        nbytes = [[0.0, 64.0, 128.0], [64.0, 0.0, 256.0], [128.0, 256.0, 0.0]]
        out = comm.alltoallv(matrix, nbytes)
        assert out[2][0] == "0->2"
        assert comm.elapsed > 0

    def test_cost_gated_by_largest_pair(self):
        from repro.mpisim import alltoallv_time, link_parameters

        link = link_parameters(SLINGSHOT_11)
        uniform = [[0.0 if i == j else 1024.0 for j in range(4)] for i in range(4)]
        skewed = [[0.0 if i == j else 1024.0 for j in range(4)] for i in range(4)]
        skewed[0][1] = 1 << 24  # one huge pair dominates its round
        assert alltoallv_time(skewed, link) > alltoallv_time(uniform, link)

    def test_matches_alltoall_for_uniform_sizes(self):
        from repro.mpisim import alltoall_time, alltoallv_time, link_parameters

        link = link_parameters(SLINGSHOT_11)
        p, n = 8, 4096.0
        uniform = [[0.0 if i == j else n for j in range(p)] for i in range(p)]
        assert alltoallv_time(uniform, link) == pytest.approx(
            alltoall_time(p, n, link), rel=0.01
        )

    def test_shape_validation(self):
        from repro.mpisim import SimComm, alltoallv_time, link_parameters

        with pytest.raises(ValueError):
            alltoallv_time([[0.0, 1.0]], link_parameters(SLINGSHOT_11))
        comm = SimComm(2, SLINGSHOT_11)
        with pytest.raises(CommError):
            comm.alltoallv([[1, 2], [3, 4]], [[0.0], [0.0]])


class TestDeviceD2DMemset:
    def test_in_package_copy_faster(self):
        from repro.gpu import Device
        from repro.hardware.gpu import MI250X_GCD

        d = Device(MI250X_GCD)
        fast = d.memcpy_d2d(1 << 26, same_package=True)
        slow = d.memcpy_d2d(1 << 26, same_package=False)
        assert fast < slow

    def test_memset_is_bandwidth_limited(self):
        from repro.gpu import Device
        from repro.hardware.gpu import V100

        d = Device(V100)
        t = d.memset(1 << 28)
        assert t == pytest.approx((1 << 28) / V100.effective_bandwidth)

    def test_memset_validation(self):
        from repro.gpu import Device
        from repro.hardware.gpu import V100

        with pytest.raises(ValueError):
            Device(V100).memset(-1)


class TestPendingOpClockAccounting:
    """Nonblocking ops: completion computed at post, applied at wait."""

    def _p2p_time(self, comm, src, dst, nbytes):
        link = comm.topology.link(src, dst)
        return link.p2p_time(nbytes)

    def test_wait_applies_posted_completion_time(self):
        comm = SimComm(2, SLINGSHOT_11)
        nbytes = 1 << 20
        t = self._p2p_time(comm, 0, 1, nbytes)
        op = comm.isendrecv(0, 1, nbytes=nbytes)
        assert comm.clocks[0] == 0.0  # nothing applied yet
        op.wait()
        assert comm.clocks[0] == pytest.approx(t)
        assert comm.clocks[1] == pytest.approx(t)

    def test_compute_overlap_hides_the_transfer(self):
        comm = SimComm(2, SLINGSHOT_11)
        nbytes = 1 << 20
        t = self._p2p_time(comm, 0, 1, nbytes)
        op = comm.isendrecv(0, 1, nbytes=nbytes)
        comm.advance(0, 10 * t)  # compute strictly dominates
        op.wait()
        assert comm.clocks[0] == pytest.approx(10 * t)  # fully hidden
        assert comm.clocks[1] == pytest.approx(t)  # dst only paid the wire

    def test_partial_overlap_takes_the_max(self):
        comm = SimComm(2, SLINGSHOT_11)
        nbytes = 1 << 24
        t = self._p2p_time(comm, 0, 1, nbytes)
        op = comm.isendrecv(0, 1, nbytes=nbytes)
        comm.advance(0, 0.5 * t)
        op.wait()
        # compute covered half the transfer; the wire sets the clock
        assert comm.clocks[0] == pytest.approx(t)

    def test_wait_is_idempotent(self):
        comm = SimComm(2, SLINGSHOT_11)
        op = comm.isendrecv(0, 1, nbytes=1 << 20)
        op.wait()
        after_first = comm.clocks.copy()
        comm.advance(0, 1.0)
        op.wait()  # must not re-apply the old completion time
        assert comm.clocks[0] == pytest.approx(after_first[0] + 1.0)

    def test_completion_anchored_at_post_not_wait(self):
        """Clocks advanced between post and wait don't delay the wire:
        the transfer started when it was posted."""
        comm = SimComm(2, SLINGSHOT_11)
        nbytes = 1 << 20
        t = self._p2p_time(comm, 0, 1, nbytes)
        comm.advance(1, 5.0)  # dst is ahead when the op is posted
        op = comm.isendrecv(0, 1, nbytes=nbytes)
        op.wait()
        assert comm.clocks[0] == pytest.approx(5.0 + t)
        assert comm.clocks[1] == pytest.approx(5.0 + t)

    def test_stats_charged_at_post_under_overlap(self):
        comm = SimComm(2, SLINGSHOT_11)
        nbytes = 1 << 20
        t = self._p2p_time(comm, 0, 1, nbytes)
        op = comm.isendrecv(0, 1, nbytes=nbytes)
        # the accounting exists before wait: bytes moved and both ranks'
        # comm time are already attributed to the operation
        assert comm.stats.p2p_messages == 1
        assert comm.stats.p2p_bytes == nbytes
        assert comm.stats.total_comm_time == pytest.approx(2 * t)
        comm.advance(0, 100 * t)
        op.wait()
        assert comm.stats.total_comm_time == pytest.approx(2 * t)

    def test_stats_totals_mix_blocking_and_overlapped(self):
        comm = SimComm(4, SLINGSHOT_11, ranks_per_node=2)
        n1, n2 = 1 << 16, 1 << 22
        t1 = self._p2p_time(comm, 0, 1, n1)
        op = comm.isendrecv(0, 1, nbytes=n1)
        t2 = self._p2p_time(comm, 2, 3, n2)
        comm.sendrecv(2, 3, None, nbytes=n2)
        op.wait()
        assert comm.stats.p2p_messages == 2
        assert comm.stats.p2p_bytes == pytest.approx(n1 + n2)
        assert comm.stats.total_comm_time == pytest.approx(2 * t1 + 2 * t2)

    def test_ialltoall_data_before_clocks(self):
        comm = SimComm(3, SLINGSHOT_11)
        matrix = [[(s, d) for d in range(3)] for s in range(3)]
        out, op = comm.ialltoall(matrix, nbytes_per_pair=4096)
        assert out[2][0] == (0, 2)  # staged immediately for overlap
        assert comm.elapsed == 0.0  # but simulated time hasn't moved
        comm.advance_all(1e-9)
        op.wait()
        assert comm.elapsed > 1e-9
        assert comm.stats.collectives == 1


class TestRankFailure:
    """ULFM-style detection: failures surface at the next touching op."""

    def test_collective_raises_after_fail_rank(self):
        from repro.mpisim import RankFailedError

        comm = SimComm(4, SLINGSHOT_11)
        comm.fail_rank(2)
        with pytest.raises(RankFailedError) as exc:
            comm.allreduce([1.0] * 4, nbytes=8)
        assert exc.value.ranks == (2,)

    def test_p2p_only_fails_if_it_touches_the_dead_rank(self):
        from repro.mpisim import RankFailedError

        comm = SimComm(4, SLINGSHOT_11)
        comm.fail_rank(3)
        comm.sendrecv(0, 1, "ok", nbytes=64)  # disjoint pair still works
        with pytest.raises(RankFailedError):
            comm.sendrecv(0, 3, "dead", nbytes=64)
        with pytest.raises(RankFailedError):
            comm.isendrecv(3, 1, nbytes=64)

    def test_restore_rank_rejoins_at_the_frontier(self):
        comm = SimComm(4, SLINGSHOT_11)
        comm.advance(1, 7.0)
        comm.fail_rank(0)
        comm.restore_rank(0)
        # the replacement rank cannot restart in the past
        assert comm.clocks[0] == pytest.approx(7.0)
        comm.barrier()  # and the communicator is whole again

    def test_fail_rank_validation(self):
        comm = SimComm(2, SLINGSHOT_11)
        with pytest.raises(CommError):
            comm.fail_rank(5)
        with pytest.raises(CommError):
            comm.restore_rank(-1)


class TestShrinkAgree:
    """ULFM-style fault-tolerant collectives: agree and shrink."""

    def test_agree_never_raises_and_names_the_dead(self):
        comm = SimComm(6, SLINGSHOT_11)
        comm.fail_rank(2)
        comm.fail_rank(4)
        agreed, failed = comm.agree()
        assert bool(agreed) is True
        assert failed == (2, 4)
        # and it still costs a collective on the survivors' clocks
        assert comm.elapsed > 0.0
        assert comm.clocks[2] == 0.0  # the dead don't participate

    def test_agree_reduces_over_survivors_only(self):
        comm = SimComm(4, SLINGSHOT_11)
        comm.fail_rank(1)
        values = [7, 999, 3, 5]  # rank 1's poisoned entry must be ignored
        agreed, failed = comm.agree(values, op=min)
        assert agreed == 3
        assert failed == (1,)

    def test_agree_validation(self):
        comm = SimComm(3, SLINGSHOT_11)
        with pytest.raises(CommError):
            comm.agree([1, 2])  # wrong length
        for r in range(3):
            comm.fail_rank(r)
        with pytest.raises(CommError):
            comm.agree()  # nobody left to agree

    def test_shrink_renumbers_survivors_in_order(self):
        comm = SimComm(5, SLINGSHOT_11)
        comm.advance(3, 2.5)
        comm.fail_rank(0)
        comm.fail_rank(2)
        sub = comm.shrink()
        assert sub.nranks == 3
        assert sub.parent_ranks == (1, 3, 4)
        # old rank 3 (now new rank 1) carried its clock through the
        # shrink consensus, which synchronizes the survivor group
        assert sub.elapsed >= 2.5
        sub.barrier()  # fully functional communicator

    def test_shrink_of_healthy_comm_is_identity(self):
        comm = SimComm(4, SLINGSHOT_11)
        sub = comm.shrink()
        assert sub.nranks == 4
        assert sub.parent_ranks == (0, 1, 2, 3)

    def test_repeated_failures_shrink_down_to_one(self):
        comm = SimComm(4, SLINGSHOT_11)
        lineage = [comm]
        while comm.nranks > 1:
            comm.fail_rank(comm.nranks - 1)
            comm = comm.shrink()
            lineage.append(comm)
        assert [c.nranks for c in lineage] == [4, 3, 2, 1]
        # a single-rank communicator still "collects"
        comm.barrier()
        assert comm.allreduce([42.0], nbytes=8) is not None

    def test_rank_zero_failure_promotes_rank_one(self):
        comm = SimComm(3, SLINGSHOT_11)
        comm.fail_rank(0)
        sub = comm.shrink()
        assert sub.nranks == 2
        assert sub.parent_ranks == (1, 2)
        sub.sendrecv(0, 1, "root moved", nbytes=64)

    def test_shrink_pays_the_agree_collective(self):
        comm = SimComm(8, SLINGSHOT_11)
        before = comm.stats.collectives
        comm.fail_rank(5)
        comm.shrink()
        assert comm.stats.collectives == before + 1

    def test_dead_ranks_stay_dead_across_collectives_until_shrink(self):
        from repro.mpisim import RankFailedError

        comm = SimComm(4, SLINGSHOT_11)
        comm.fail_rank(1)
        with pytest.raises(RankFailedError):
            comm.allreduce([1.0] * 4, nbytes=8)
        sub = comm.shrink()
        sub.allreduce([1.0] * 3, nbytes=8)  # survivors carry on
