"""Tests for the representative-rank engine: partitioning + ScaledComm."""

import numpy as np
import pytest

from repro.hardware.interconnect import SLINGSHOT_11
from repro.mpisim import (
    BlockDecomposition,
    CommError,
    PartitionError,
    RankFailedError,
    RankGroup,
    RankGroupPartitioner,
    RankPartition,
    ScaledComm,
    SimComm,
    Topology,
    all_live_partition,
    alltoall_time,
    balanced_block_grid,
    partition_from_labels,
    verify_assignments,
)
from repro.observability.tracer import Tracer


# -- partition layer ------------------------------------------------------------


class TestRankGroup:
    def test_proxy_assignment_round_robin(self):
        g = RankGroup("g", members=(0, 1, 2, 3, 4, 5), representatives=(0, 3))
        assert g.proxy_assignment() == {1: 0, 2: 3, 4: 0, 5: 3}
        assert g.proxy_counts() == {0: 2, 3: 2}
        assert g.modeled_count == 4

    def test_all_live_group_has_no_proxies(self):
        g = RankGroup("g", members=(0, 1), representatives=(0, 1))
        assert g.proxy_assignment() == {}
        assert g.proxy_counts() == {0: 0, 1: 0}


class TestVerifyAssignments:
    def test_valid_partition_passes(self):
        p = RankPartition(4, (RankGroup("a", (0, 1), (0,)),
                              RankGroup("b", (2, 3), (2, 3))))
        assert p.live_ranks == (0, 2, 3)
        assert p.modeled_count == 1
        assert list(p.weights) == [2, 1, 1]

    def test_uncovered_rank_rejected(self):
        with pytest.raises(PartitionError, match="not assigned"):
            RankPartition(3, (RankGroup("a", (0, 1), (0,)),))

    def test_double_coverage_rejected(self):
        with pytest.raises(PartitionError, match="multiple groups"):
            RankPartition(2, (RankGroup("a", (0, 1), (0,)),
                              RankGroup("b", (1,), (1,))))

    def test_representative_outside_members_rejected(self):
        with pytest.raises(PartitionError, match="outside its members"):
            RankPartition(2, (RankGroup("a", (0,), (0,)),
                              RankGroup("b", (1,), (0,))))

    def test_no_representatives_rejected(self):
        with pytest.raises(PartitionError, match="no representatives"):
            RankPartition(2, (RankGroup("a", (0, 1), ()),))

    def test_out_of_range_rejected(self):
        with pytest.raises(PartitionError, match="out-of-range"):
            RankPartition(2, (RankGroup("a", (0, 5), (0,)),))

    def test_verify_is_callable_directly(self):
        p = all_live_partition(3)
        verify_assignments(p)  # no raise


class TestPartitioners:
    def test_all_live_partition(self):
        p = all_live_partition(5)
        assert p.nlive == 5
        assert p.modeled_count == 0

    def test_partition_from_labels(self):
        p = partition_from_labels(["a", "b", "a", "b", "a"])
        assert p.nlive == 2
        assert p.live_ranks == (0, 1)
        assert p.modeled_count == 3

    def test_endpoints_strategy(self):
        p = RankGroupPartitioner("endpoints").partition(16)
        names = {g.name for g in p.groups}
        assert names == {"first", "last", "interior"}
        assert p.nlive == 3

    def test_node_role_strategy(self):
        p = RankGroupPartitioner("node-role").partition(64, ranks_per_node=8)
        assert p.nlive == 6  # first/mid/last node x leader/follower
        assert p.nranks == 64

    def test_block3d_strategy_interior_classes(self):
        grid = balanced_block_grid(64)
        dec = BlockDecomposition(nx=grid[0], ny=grid[1], nz=grid[2],
                                 px=grid[0], py=grid[1], pz=grid[2])
        p = RankGroupPartitioner("block3d").partition(64, decomposition=dec)
        assert p.nlive <= 27
        assert p.nranks == 64

    def test_block3d_needs_matching_decomposition(self):
        dec = BlockDecomposition(nx=2, ny=2, nz=2, px=2, py=2, pz=2)
        with pytest.raises(PartitionError, match="communicator has"):
            RankGroupPartitioner("block3d").partition(16, decomposition=dec)

    def test_auto_prefers_decomposition(self):
        dec = BlockDecomposition(nx=2, ny=2, nz=2, px=2, py=2, pz=2)
        p = RankGroupPartitioner().partition(8, decomposition=dec)
        assert len(p.groups) == 8  # every corner is its own class

    def test_unknown_strategy_rejected(self):
        with pytest.raises(PartitionError, match="unknown strategy"):
            RankGroupPartitioner("magic")


class TestGridHelpers:
    def test_balanced_block_grid_cube(self):
        assert balanced_block_grid(64) == (4, 4, 4)

    def test_balanced_block_grid_prime(self):
        assert balanced_block_grid(13) == (1, 1, 13)

    def test_balanced_block_grid_any_count(self):
        for n in (1, 2, 6, 72, 72592):
            px, py, pz = balanced_block_grid(n)
            assert px * py * pz == n
            assert px <= py <= pz

    def test_coords_roundtrip(self):
        dec = BlockDecomposition(nx=4, ny=2, nz=2, px=4, py=2, pz=2)
        for r in range(dec.nranks):
            ix, iy, iz = dec.coords(r)
            assert iz * 8 + iy * 4 + ix == r

    def test_boundary_class_counts(self):
        dec = BlockDecomposition(nx=4, ny=4, nz=4, px=4, py=4, pz=4)
        classes = {dec.boundary_class(r) for r in range(dec.nranks)}
        assert len(classes) == 27
        assert dec.boundary_class(0) == "xlo/ylo/zlo"

    def test_boundary_class_degenerate_axis(self):
        dec = BlockDecomposition(nx=4, ny=1, nz=1, px=4, py=1, pz=1)
        assert dec.boundary_class(1) == "xmid/y*/z*"

    def test_topology_node_roles(self):
        topo = Topology(nranks=16, ranks_per_node=4, fabric=SLINGSHOT_11)
        assert topo.local_rank(5) == 1
        assert topo.is_node_leader(4)
        assert not topo.is_node_leader(5)


# -- ScaledComm -----------------------------------------------------------------


def _drive(comm):
    """A mixed campaign touching every major op, identical on any comm."""
    n = comm.nranks
    comm.advance_all(1e-4)
    comm.allreduce([1.0] * n, 64.0)
    comm.bcast(3.0, 8.0)
    comm.reduce([2.0] * n, 32.0)
    comm.allgather([1] * n, 16.0)
    comm.reduce_scatter([[1.0] * n for _ in range(n)], 256.0)
    comm.alltoall([[0] * n for _ in range(n)], 128.0)
    _, op = comm.ialltoall([[0] * n for _ in range(n)], 64.0)
    comm.advance_all(5e-5)
    op.wait()
    if n > 1:
        comm.sendrecv(0, 1, None, 512.0)
        comm.isendrecv(0, 1, 2048.0).wait()
    comm.neighbor_exchange(
        lambda r: [(r + 1) % comm.machine_ranks,
                   (r - 1) % comm.machine_ranks], 1024.0)
    comm.barrier()


class TestScaledCommIdentity:
    """R = P must reproduce SimComm bit for bit."""

    @pytest.mark.parametrize("nranks,rpn", [(4, 1), (8, 4), (16, 8)])
    def test_bit_identity(self, nranks, rpn):
        ref = SimComm(nranks, SLINGSHOT_11, ranks_per_node=rpn,
                      device_buffers=True)
        scl = ScaledComm(nranks, SLINGSHOT_11, ranks_per_node=rpn,
                         device_buffers=True)
        _drive(ref)
        _drive(scl)
        assert np.array_equal(ref.clocks, scl.clocks)
        assert ref.stats == scl.stats

    def test_default_partition_is_all_live(self):
        c = ScaledComm(6, SLINGSHOT_11)
        assert c.nranks == 6
        assert c.machine_ranks == 6
        assert c.representatives == tuple(range(6))
        assert list(c.rank_weights) == [1] * 6

    def test_partition_size_mismatch_rejected(self):
        with pytest.raises(CommError, match="partition covers"):
            ScaledComm(8, SLINGSHOT_11, partition=all_live_partition(4))


@pytest.fixture
def scaled16():
    """16 machine ranks, 3 exemplars (endpoints partition)."""
    part = RankGroupPartitioner("endpoints").partition(16)
    return ScaledComm(16, SLINGSHOT_11, ranks_per_node=8,
                      device_buffers=True, partition=part)


class TestScaledCommModeled:
    def test_shape(self, scaled16):
        assert scaled16.nranks == 3
        assert scaled16.machine_ranks == 16
        assert scaled16.representatives == (0, 1, 15)
        assert int(scaled16.rank_weights.sum()) == 16

    def test_collective_cost_at_full_machine(self, scaled16):
        full = SimComm(16, SLINGSHOT_11, ranks_per_node=8,
                       device_buffers=True)
        scaled16.allreduce([1.0] * 3, 1024.0)
        full.allreduce([1.0] * 16, 1024.0)
        assert scaled16.elapsed == full.elapsed

    def test_weighted_allreduce_sum(self, scaled16):
        out = scaled16.allreduce([1.0] * 3, 8.0)
        assert len(out) == 3
        assert out[0] == 16.0  # every machine rank contributes

    def test_idempotent_op_not_weighted(self, scaled16):
        out = scaled16.allreduce([3.0, 7.0, 5.0], 8.0, op=np.maximum)
        assert out[0] == 7.0

    def test_weighted_reduce_scatter(self, scaled16):
        out = scaled16.reduce_scatter([[1.0] * 3 for _ in range(3)], 96.0)
        assert out == [16.0, 16.0, 16.0]

    def test_stats_account_full_machine(self, scaled16):
        scaled16.allreduce([1.0] * 3, 8.0)
        assert scaled16.stats.collective_bytes == 8.0 * 16
        assert scaled16.stats.collectives == 1

    def test_group_clocks_mirror_representatives(self, scaled16):
        scaled16.advance_all(np.array([1.0, 2.0, 3.0]))
        groups = {g.name: g for g in scaled16.group_clocks()}
        interior = groups["interior"]
        assert interior.count == 13
        assert interior.min == interior.max == 2.0
        assert interior.sum == 13 * 2.0
        assert interior.mean == 2.0
        # singleton groups have no modelled members
        assert groups["first"].count == 0

    def test_collective_synchronizes_groups(self, scaled16):
        scaled16.advance(1, 5.0)  # the interior exemplar races ahead
        scaled16.barrier()
        groups = {g.name: g for g in scaled16.group_clocks()}
        assert groups["interior"].min == groups["interior"].max
        assert groups["interior"].min == scaled16.elapsed

    def test_load_imbalance_weighted(self, scaled16):
        scaled16.advance_all(np.array([1.0, 1.0, 1.0]))
        assert scaled16.load_imbalance() == pytest.approx(1.0)
        scaled16.advance(0, 1.0)  # one singleton exemplar is slow
        # full-machine mean barely moves: 15 of 16 ranks stayed at 1.0
        assert scaled16.load_imbalance() == pytest.approx(
            2.0 / ((15 * 1.0 + 2.0) / 16))

    def test_elapsed_is_live_max(self, scaled16):
        scaled16.advance(2, 2.5)
        assert scaled16.elapsed == 2.5

    def test_describe(self, scaled16):
        assert scaled16.describe() == "ScaledComm(P=16, R=3, groups=3)"

    def test_subgroup_collectives_rejected(self, scaled16):
        with pytest.raises(CommError, match="all-live"):
            scaled16._sync_collective(8.0, alltoall_time,
                                      participants=[0, 1], name="x")

    def test_fail_rank_speaks_global_machine_ranks(self, scaled16):
        # rank 5 is modelled (reps are 0, 1, 15): a group-level failure
        scaled16.fail_rank(5)
        assert scaled16.failed_ranks() == [5]
        assert not scaled16.failed.any()  # no exemplar died
        assert scaled16.machine_alive_count == 15
        # the interior group's effective weight dropped by one
        assert scaled16.rank_weights.tolist() == [1, 13, 1]
        scaled16.restore_rank(5)
        assert scaled16.failed_ranks() == []
        assert scaled16.rank_weights.tolist() == [1, 14, 1]

    def test_modelled_failure_detected_at_next_collective(self, scaled16):
        scaled16.fail_rank(7)
        with pytest.raises(RankFailedError) as exc:
            scaled16.allreduce([1.0] * 3, 8.0)
        assert exc.value.ranks == (7,)

    def test_agree_priced_at_machine_survivor_count(self, scaled16):
        full = SimComm(16, SLINGSHOT_11, ranks_per_node=8,
                       device_buffers=True)
        scaled16.fail_rank(5)
        full.fail_rank(5)
        acc, dead = scaled16.agree()
        acc_full, dead_full = full.agree()
        assert (acc, dead) == (acc_full, dead_full)
        # 15 machine survivors price the consensus on both communicators
        assert scaled16.elapsed == full.elapsed

    def test_agree_weighted_fold(self, scaled16):
        acc, _ = scaled16.agree([1.0] * 3, op=np.add)
        assert acc == 16.0  # exemplars weighted by the machine
        scaled16.fail_rank(5)
        acc, dead = scaled16.agree([1.0] * 3, op=np.add)
        assert acc == 15.0 and dead == (5,)

    def test_shrink_rebuilds_survivor_partition(self, scaled16):
        scaled16.fail_rank(5)
        sub = scaled16.shrink()
        assert sub.machine_ranks == 15
        assert sub.parent_machine_ranks == tuple(
            r for r in range(16) if r != 5)
        # dense renumbering preserved order: old 15 became new 14
        assert sub.representatives == (0, 1, 14)
        assert sub.rank_weights.tolist() == [1, 13, 1]

    def test_shrink_promotes_when_all_reps_die(self, scaled16):
        # rank 1 is the interior group's only representative
        scaled16.advance(1, 2.0)
        scaled16.fail_rank(1)
        sub = scaled16.shrink()
        assert sub.machine_ranks == 15
        # old rank 2 (new rank 1) promoted to carry the interior group
        assert sub.representatives == (0, 1, 14)
        assert sub.rank_weights.tolist() == [1, 13, 1]
        # the promotee inherits the modelled-rank clock estimate, not zero
        assert sub.clocks[1] == pytest.approx(
            scaled16._clock_estimate(2, scaled16.clocks))

    def test_split_over_machine_ranks(self, scaled16):
        subs = scaled16.split(lambda r: r % 2)
        assert sorted(subs) == [0, 1]
        assert subs[0].machine_ranks == 8 and subs[1].machine_ranks == 8
        assert subs[0].parent_machine_ranks == tuple(range(0, 16, 2))
        total = sum(s.machine_ranks for s in subs.values())
        assert total == scaled16.machine_ranks

    def test_ialltoall_costs_full_machine(self, scaled16):
        full = SimComm(16, SLINGSHOT_11, ranks_per_node=8,
                       device_buffers=True)
        _, op = scaled16.ialltoall([[0] * 3 for _ in range(3)], 64.0)
        op.wait()
        _, ref = full.ialltoall([[0] * 16 for _ in range(16)], 64.0)
        ref.wait()
        assert scaled16.elapsed == full.elapsed

    def test_alltoallv_conservative_bound(self, scaled16):
        nbytes = [[64.0] * 3 for _ in range(3)]
        scaled16.alltoallv([[0] * 3 for _ in range(3)], nbytes)
        link = scaled16.topology.internode_link(device_buffers=True)
        assert scaled16.elapsed == pytest.approx(15 * link.p2p_time(64.0))

    def test_neighbor_exchange_uses_global_ranks(self, scaled16):
        # ring over the 16 machine ranks; exemplars look up modelled
        # partners through their proxies
        op = scaled16.ineighbor_exchange(
            lambda r: [(r + 1) % 16, (r - 1) % 16], 4096.0)
        op.wait()
        assert scaled16.elapsed > 0
        assert scaled16.stats.p2p_messages == 32  # 2 per machine rank

    def test_group_edge_tracing(self):
        tracer = Tracer()
        part = RankGroupPartitioner("endpoints").partition(16)
        c = ScaledComm(16, SLINGSHOT_11, ranks_per_node=8,
                       device_buffers=True, partition=part, tracer=tracer)
        c.sendrecv(0, 1, None, 128.0)
        names = set(tracer.metrics.counters)
        assert "mpisim.group_edge[first->interior].messages" in names


# -- SimComm satellites ----------------------------------------------------------


class TestReduceScatter:
    def test_data_semantics(self):
        c = SimComm(3, SLINGSHOT_11)
        blocks = [[10 * src + dst for dst in range(3)] for src in range(3)]
        out = c.reduce_scatter(blocks, 24.0)
        assert out == [0 + 10 + 20, 1 + 11 + 21, 2 + 12 + 22]

    def test_shape_validated(self):
        c = SimComm(2, SLINGSHOT_11)
        with pytest.raises(CommError, match="block matrix"):
            c.reduce_scatter([[1.0]], 8.0)

    def test_clock_and_stats_accounting(self):
        from repro.mpisim import reduce_scatter_time

        c = SimComm(4, SLINGSHOT_11)
        c.reduce_scatter([[1.0] * 4 for _ in range(4)], 4096.0)
        link = c.topology.internode_link()
        assert c.elapsed == pytest.approx(reduce_scatter_time(4, 4096.0, link))
        assert c.stats.collectives == 1
        assert c.stats.collective_bytes == 4096.0 * 4

    def test_ring_decomposition_of_rabenseifner(self):
        """reduce_scatter + allgather(n/p) β-cost equals Rabenseifner's
        allreduce β-cost exactly — the ring decomposition the cost-model
        comments describe."""
        from repro.mpisim import (
            allgather_time,
            allreduce_time,
            reduce_scatter_time,
        )
        from repro.mpisim.costmodel import LinkParameters

        beta_only = LinkParameters(alpha=0.0, beta=1e-10)
        for p in (2, 4, 8, 64):
            n = 1 << 20
            ring = (reduce_scatter_time(p, n, beta_only)
                    + allgather_time(p, n / p, beta_only))
            rab = 2 * (p - 1) / p * n * beta_only.beta
            assert ring == pytest.approx(rab, rel=1e-12)
            # and the modelled allreduce never exceeds the ring build
            assert allreduce_time(p, n, beta_only) <= ring * (1 + 1e-12)


class TestNeighborExchange:
    def test_blocking_ring(self):
        c = SimComm(4, SLINGSHOT_11)
        c.neighbor_exchange(lambda r: [(r + 1) % 4, (r - 1) % 4], 1024.0)
        link = c.topology.internode_link()
        assert c.elapsed == pytest.approx(2 * link.p2p_time(1024.0))
        assert c.stats.p2p_messages == 8

    def test_self_partners_ignored(self):
        c = SimComm(2, SLINGSHOT_11)
        c.neighbor_exchange(lambda r: [r, 1 - r], 64.0)
        assert c.stats.p2p_messages == 2

    def test_overlap_with_compute(self):
        c = SimComm(4, SLINGSHOT_11)
        op = c.ineighbor_exchange(lambda r: [(r + 1) % 4], 1024.0)
        c.advance_all(10.0)  # compute fully hides the exchange
        op.wait()
        assert c.elapsed == pytest.approx(10.0)


class TestSplitStats:
    def test_merge_child_stats(self):
        c = SimComm(4, SLINGSHOT_11)
        subs = c.split(lambda r: r % 2)
        for sub in subs.values():
            sub.allreduce([1.0] * sub.nranks, 8.0)
        assert c.stats.collectives == 0
        c.merge_child_stats(subs)
        assert c.stats.collectives == 2
        assert c.stats.collective_bytes == 8.0 * 4

    def test_shared_stats_children_write_parent(self):
        c = SimComm(4, SLINGSHOT_11)
        subs = c.split(lambda r: r % 2, shared_stats=True)
        for sub in subs.values():
            sub.allreduce([1.0] * sub.nranks, 8.0)
        assert c.stats.collectives == 2
        # merging shared children must not double-count
        c.merge_child_stats(subs)
        assert c.stats.collectives == 2

    def test_split_records_parent_ranks(self):
        c = SimComm(4, SLINGSHOT_11)
        subs = c.split(lambda r: r % 2)
        assert subs[0].parent_ranks == (0, 2)
        assert subs[1].parent_ranks == (1, 3)
