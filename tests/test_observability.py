"""Property-tested invariants of the unified observability layer.

The tracer/metrics/export/gate stack only earns its keep if its
guarantees are mechanical: spans nest, durations are non-negative,
counters are monotone, histograms conserve observations, the exported
Chrome-trace JSON honours the viewer contract, and — the load-bearing
one — instrumentation is observation-only, which the differential test
proves by running the resilient-campaign demo traced and untraced and
demanding bit-identical final state and fault accounting.
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.gpu.device import Device
from repro.hardware.catalog import FRONTIER
from repro.observability import (
    NULL_TRACER,
    BenchRegressionError,
    BenchRegressionGate,
    Histogram,
    MetricsError,
    MetricsRegistry,
    NullTracer,
    TraceError,
    TraceFormatError,
    Tracer,
    export_chrome_trace,
    hot_spans_report,
    merged_trace_events,
    metrics_report,
    subsystems_in_trace,
    summarize_spans,
    validate_chrome_trace,
)
from repro.similarity.gemmtally import tally_2way

# -- strategies -------------------------------------------------------------

#: a random begin/end program over a handful of lanes; "end" on an empty
#: lane stack is interpreted as a no-op so every program is legal
lane_ops = st.lists(
    st.tuples(st.integers(min_value=0, max_value=2),
              st.sampled_from(["begin", "end"])),
    max_size=40,
)


def run_lane_program(ops) -> Tracer:
    """Interpret a begin/end program on the deterministic tick clock."""
    tr = Tracer()
    stacks: dict[int, list[int]] = {0: [], 1: [], 2: []}
    for lane, op in ops:
        if op == "begin":
            stacks[lane].append(
                tr.begin(f"span{lane}", pid="p", tid=f"t{lane}"))
        elif stacks[lane]:
            tr.end(stacks[lane].pop())
    for stack in stacks.values():
        while stack:
            tr.end(stack.pop())
    return tr


class TestSpanProperties:
    @given(lane_ops)
    @settings(max_examples=60, deadline=None)
    def test_every_span_closes_with_nonnegative_duration(self, ops):
        tr = run_lane_program(ops)
        assert not tr.open_spans()
        assert all(s.dur >= 0 for s in tr.spans)

    @given(lane_ops)
    @settings(max_examples=60, deadline=None)
    def test_children_nest_inside_their_parents(self, ops):
        tr = run_lane_program(ops)
        for span in tr.spans:
            if span.parent is None:
                continue
            parent = tr.spans[span.parent]
            assert (parent.pid, parent.tid) == (span.pid, span.tid)
            assert parent.ts <= span.ts
            assert span.end_ts <= parent.end_ts

    @given(lane_ops)
    @settings(max_examples=40, deadline=None)
    def test_chrome_trace_round_trips_and_validates(self, ops):
        tr = run_lane_program(ops)
        doc = export_chrome_trace(tr)
        data = validate_chrome_trace(doc)
        for event in data["traceEvents"]:
            assert isinstance(event["ph"], str)
            if event["ph"] == "X":
                assert event["dur"] >= 0
                assert isinstance(event["ts"], (int, float))
        # byte-stable round trip: parse -> re-serialize -> parse
        assert json.loads(json.dumps(data)) == data
        # one complete event per closed span, no invented intervals
        xs = [e for e in data["traceEvents"] if e["ph"] == "X"]
        assert len(xs) == len(tr.closed_spans())

    def test_tick_clock_is_deterministic(self):
        docs = []
        for _ in range(2):
            tr = Tracer()
            tally_2way(np.arange(12).reshape(3, 4) % 3, n_states=3,
                       method="popcount", abft=True, tracer=tr)
            docs.append(export_chrome_trace(tr))
        assert docs[0] == docs[1]

    def test_record_keeps_caller_timestamps(self):
        tr = Tracer()
        s = tr.record("op", 3.5, 1.25, pid="p", tid="t")
        assert s.ts == 3.5 and s.dur == 1.25 and s.end_ts == 4.75

    def test_record_nests_under_open_lane_span(self):
        tr = Tracer()
        outer = tr.begin("outer", pid="p", tid="t")
        inner = tr.record("inner", 10.0, 1.0, pid="p", tid="t")
        other = tr.record("elsewhere", 10.0, 1.0, pid="p", tid="u")
        tr.end(outer)
        assert inner.parent == outer
        assert other.parent is None

    def test_structural_misuse_raises(self):
        tr = Tracer()
        with pytest.raises(TraceError, match="negative duration"):
            tr.record("bad", 0.0, -1.0)
        a = tr.begin("a")
        b = tr.begin("b")
        with pytest.raises(TraceError, match="non-LIFO"):
            tr.end(a)
        tr.end(b)
        tr.end(a)
        with pytest.raises(TraceError, match="already ended"):
            tr.end(a)
        c = tr.begin("c", ts=100.0)
        with pytest.raises(TraceError, match="before its start"):
            tr.end(c, ts=99.0)

    def test_injected_clock_supplies_timestamps(self):
        ticks = iter([1.0, 4.0, 9.0])
        tr = Tracer(clock=lambda: next(ticks))
        with tr.span("wall") as s:
            tr.instant("mark")
        assert s.ts == 1.0 and s.dur == 8.0
        assert tr.instants[0].ts == 4.0

    def test_null_tracer_is_inert(self):
        nt = NullTracer()
        assert not nt.is_enabled and NULL_TRACER.is_enabled is False
        with nt.span("anything") as s:
            nt.record("x", 0.0, 1.0)
            nt.instant("y")
            nt.end(nt.begin("z"))
        assert s.dur == 0.0
        assert nt.spans == [] and nt.instants == []
        assert nt.closed_spans() == [] and nt.open_spans() == []


# -- metrics ----------------------------------------------------------------


class TestMetricsProperties:
    @given(st.lists(st.floats(min_value=0, max_value=1e9), max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_counter_is_monotone(self, increments):
        c = MetricsRegistry().counter("work")
        seen = [c.value]
        for inc in increments:
            c.inc(inc)
            seen.append(c.value)
        assert all(b >= a for a, b in zip(seen, seen[1:]))
        assert c.value == pytest.approx(sum(increments))

    def test_counter_rejects_negative(self):
        c = MetricsRegistry().counter("work")
        with pytest.raises(MetricsError):
            c.inc(-1.0)

    @given(
        st.lists(st.integers(min_value=-50, max_value=50), unique=True,
                 min_size=1, max_size=6),
        st.lists(st.floats(min_value=-100, max_value=100,
                           allow_nan=False), max_size=60),
    )
    @settings(max_examples=60, deadline=None)
    def test_histogram_conserves_observations(self, edges, observations):
        edges = sorted(float(e) for e in edges)
        h = Histogram(name="h", edges=tuple(edges))
        for x in observations:
            h.observe(x)
        assert sum(h.counts) == h.count == len(observations)
        assert h.total == pytest.approx(sum(observations))
        # independent bucketing: count per bucket matches bisect_right
        import bisect
        expected = [0] * (len(edges) + 1)
        for x in observations:
            expected[bisect.bisect_right(edges, x)] += 1
        assert list(h.counts) == expected

    def test_histogram_requires_increasing_edges(self):
        with pytest.raises(MetricsError):
            Histogram(name="h", edges=(1.0, 1.0))

    def test_registry_get_or_create_identity(self):
        m = MetricsRegistry()
        assert m.counter("a") is m.counter("a")
        assert m.gauge("g") is m.gauge("g")
        assert m.histogram("h", (1.0, 2.0)) is m.histogram("h")
        m.gauge("g").set(4.5)
        d = m.to_dict()
        assert d["gauges"]["g"] == 4.5


# -- export / reports -------------------------------------------------------


class TestExport:
    def test_lane_assignment_is_deterministic_with_metadata(self):
        tr = Tracer()
        tr.record("a", 0.0, 1.0, pid="alpha", tid="x")
        tr.record("b", 0.0, 1.0, pid="beta", tid="y")
        events = merged_trace_events(tr)
        meta = {(e["name"], e["args"]["name"]): e for e in events
                if e["ph"] == "M"}
        assert ("process_name", "alpha") in meta
        assert ("process_name", "beta") in meta
        assert meta[("process_name", "alpha")]["pid"] == 1
        assert meta[("process_name", "beta")]["pid"] == 2

    def test_open_spans_are_excluded(self):
        tr = Tracer()
        tr.begin("never-ends")
        assert [e for e in merged_trace_events(tr) if e["ph"] == "X"] == []

    def test_counters_become_counter_events(self):
        tr = Tracer()
        tr.record("op", 0.0, 2.0)
        tr.metrics.counter("ops").inc(7)
        events = merged_trace_events(tr)
        counters = [e for e in events if e["ph"] == "C"]
        assert len(counters) == 1
        assert counters[0]["name"] == "ops"
        assert counters[0]["args"]["value"] == 7

    def test_device_launches_merge_into_gpu_lane(self):
        from repro.similarity.gemmtally import gemmtally_kernel_specs

        device = Device(FRONTIER.node.gpu)
        for spec in gemmtally_kernel_specs(32, 256):
            device.launch_sync(spec)
        tr = Tracer()
        tr.record("host-op", 0.0, 1.0)
        data = validate_chrome_trace(export_chrome_trace(tr, [device]))
        gpu_events = [e for e in data["traceEvents"]
                      if e.get("cat") == "gpu" and e["ph"] == "X"]
        assert len(gpu_events) == 2
        assert subsystems_in_trace(data) >= {"repro", "gpu"}

    def test_validate_rejects_malformed_documents(self):
        with pytest.raises(TraceFormatError, match="traceEvents"):
            validate_chrome_trace("{}")
        bad = {"traceEvents": [{"name": "x", "ph": "X", "ts": 0.0}]}
        with pytest.raises(TraceFormatError, match="no dur"):
            validate_chrome_trace(bad)
        bad = {"traceEvents": [
            {"name": "x", "ph": "X", "ts": 0.0, "dur": -1.0}]}
        with pytest.raises(TraceFormatError, match="negative"):
            validate_chrome_trace(bad)
        bad = {"traceEvents": [{"ph": "X", "ts": 0.0, "dur": 1.0}]}
        with pytest.raises(TraceFormatError, match="no name"):
            validate_chrome_trace(bad)

    def test_hot_spans_and_metrics_reports(self):
        tr = Tracer()
        tr.record("hot", 0.0, 10.0)
        tr.record("hot", 10.0, 20.0)
        tr.record("cold", 0.0, 1.0)
        tr.metrics.counter("n").inc(3)
        tr.metrics.gauge("g").set(2.0)
        tr.metrics.histogram("h", (1.0,)).observe(0.5)
        summaries = summarize_spans(tr)
        assert summaries[0].name == "hot"
        assert summaries[0].count == 2
        assert summaries[0].total == pytest.approx(30.0)
        assert summaries[0].mean == pytest.approx(15.0)
        report = hot_spans_report(tr)
        assert "hot" in report and "cold" in report
        mreport = metrics_report(tr.metrics)
        assert "counter" in mreport and "histogram" in mreport


# -- regression gate --------------------------------------------------------


class TestBenchRegressionGate:
    BENCH = {"stage": {"t_batched": 0.05}, "note": "text"}

    def test_within_band_passes(self):
        gate = BenchRegressionGate(self.BENCH, slow_factor=4.0, slack=0.1)
        check = gate.check("stage", 0.2, ("stage", "t_batched"))
        assert check.ok
        assert "ok" in check.describe()
        BenchRegressionGate.assert_ok([check])

    def test_regression_and_missing_fail(self):
        gate = BenchRegressionGate(self.BENCH, slow_factor=2.0, slack=0.0)
        slow = gate.check("stage", 1.0, ("stage", "t_batched"))
        missing = gate.check("stage", None, ("stage", "t_batched"))
        assert not slow.ok and not missing.ok
        assert "REGRESSION" in slow.describe()
        assert "MISSING" in missing.describe()
        with pytest.raises(BenchRegressionError, match="REGRESSION"):
            BenchRegressionGate.assert_ok([slow])

    def test_reference_key_errors(self):
        gate = BenchRegressionGate(self.BENCH)
        with pytest.raises(KeyError):
            gate.reference(("stage", "nope"))
        with pytest.raises(KeyError):
            gate.reference(("note",))

    def test_check_span_totals_reads_wall_clock_spans(self):
        ticks = iter([0.0, 0.1])
        tr = Tracer(clock=lambda: next(ticks))
        with tr.span("stage"):
            pass
        gate = BenchRegressionGate(self.BENCH, slow_factor=6.0, slack=0.05)
        checks = gate.check_span_totals(
            tr, {"stage": ("stage", "t_batched"),
                 "absent": ("stage", "t_batched")})
        by_name = {c.name: c for c in checks}
        assert by_name["stage"].ok
        assert by_name["stage"].measured == pytest.approx(0.1)
        assert not by_name["absent"].ok

    def test_recorded_bench_file_is_gateable(self):
        from pathlib import Path

        bench = Path(__file__).resolve().parent.parent / "BENCH_repro_speed.json"
        gate = BenchRegressionGate(bench)
        ref = gate.reference(("comet_ccc", "t_gemm_tally"))
        assert ref > 0


# -- acceptance: one merged trace across the whole stack --------------------


class TestMergedCampaignTrace:
    def test_fault_injected_figure2_trace_covers_four_subsystems(self):
        from repro.experiments.figure2 import run_figure2_resilient

        tr = Tracer()
        device = Device(FRONTIER.node.gpu)
        result = run_figure2_resilient(nsteps=6, checkpoint_interval=2,
                                       ncells=8, tracer=tr, device=device)
        assert all(result.checks().values()), result.checks()
        assert not tr.open_spans()
        data = validate_chrome_trace(export_chrome_trace(tr, [device]))
        assert subsystems_in_trace(data) >= {
            "mpisim", "resilience", "ode", "gpu"}
        # lost work was observed, not just claimed
        counters = tr.metrics.to_dict()["counters"]
        assert counters["resilience.recoveries"] >= 1
        assert counters["resilience.lost_work_seconds"] > 0
        assert counters["ode.lu_reuse_hits"] > 0


# -- differential: tracing is observation-only ------------------------------


class TestTracingIsObservationOnly:
    def test_resilient_campaign_demo_bit_identical_traced_vs_untraced(
            self, tmp_path):
        import importlib
        import io
        import sys
        from contextlib import redirect_stdout
        from pathlib import Path

        examples = Path(__file__).resolve().parent.parent / "examples"
        sys.path.insert(0, str(examples))
        try:
            demo = importlib.import_module("resilient_campaign")
            trace_path = tmp_path / "demo.json"
            with redirect_stdout(io.StringIO()):
                bare = demo.main(fast=True)
                traced = demo.main(fast=True, trace=str(trace_path))
        finally:
            sys.path.remove(str(examples))

        assert np.array_equal(bare["pos"], traced["pos"])
        assert np.array_equal(bare["vel"], traced["vel"])
        for key in ("steps_done", "events_drawn", "events_fired",
                    "events_requeued_pending", "recoveries",
                    "failures_by_kind", "shrink_recoveries",
                    "fig2_bit_identical"):
            assert bare[key] == traced[key], key
        # and the side artifact is a valid multi-subsystem trace
        data = validate_chrome_trace(trace_path.read_text())
        assert len(subsystems_in_trace(data)) >= 4
