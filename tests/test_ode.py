"""Tests for the CVODE-like BDF integrator, GMRES, and explicit RK."""

import numpy as np
import pytest
import scipy.linalg as sla
from hypothesis import given, settings, strategies as st
from scipy.integrate import solve_ivp

from repro.ode import (
    BdfIntegrator,
    IntegrationError,
    LinearSolver,
    gmres,
    gmres_flops,
    rk4,
    rk45,
)


def robertson(t, y):
    """The classic stiff kinetics benchmark (a CVODE example problem)."""
    return np.array([
        -0.04 * y[0] + 1e4 * y[1] * y[2],
        0.04 * y[0] - 1e4 * y[1] * y[2] - 3e7 * y[1] ** 2,
        3e7 * y[1] ** 2,
    ])


class TestGmres:
    def test_solves_dense_system(self):
        rng = np.random.default_rng(0)
        A = rng.normal(size=(40, 40)) + 8 * np.eye(40)
        b = rng.normal(size=40)
        r = gmres(A, b, tol=1e-12)
        assert r.converged
        assert np.linalg.norm(A @ r.x - b) < 1e-8

    def test_matrix_free_operator(self):
        rng = np.random.default_rng(1)
        A = rng.normal(size=(30, 30)) + 6 * np.eye(30)
        b = rng.normal(size=30)
        r = gmres(lambda v: A @ v, b, tol=1e-10)
        assert r.converged
        np.testing.assert_allclose(r.x, np.linalg.solve(A, b), rtol=1e-6)

    def test_identity_is_one_iteration_class(self):
        b = np.arange(1.0, 11.0)
        r = gmres(np.eye(10), b, tol=1e-12)
        assert r.converged
        assert r.iterations <= 2
        np.testing.assert_allclose(r.x, b, rtol=1e-10)

    def test_zero_rhs(self):
        r = gmres(np.eye(5), np.zeros(5))
        assert r.converged
        np.testing.assert_array_equal(r.x, np.zeros(5))

    def test_restart_still_converges(self):
        rng = np.random.default_rng(2)
        A = rng.normal(size=(60, 60)) + 12 * np.eye(60)
        b = rng.normal(size=60)
        r = gmres(A, b, tol=1e-10, restart=5, maxiter=5000)
        assert r.converged

    def test_maxiter_reports_nonconvergence(self):
        # an indefinite poorly conditioned system with tiny budget
        rng = np.random.default_rng(3)
        A = rng.normal(size=(50, 50))
        b = rng.normal(size=50)
        r = gmres(A, b, tol=1e-14, maxiter=3)
        assert not r.converged
        assert r.iterations <= 3

    def test_preconditioner_accelerates(self):
        rng = np.random.default_rng(4)
        d = np.linspace(1, 1e4, 50)
        A = np.diag(d) + rng.normal(size=(50, 50)) * 0.1
        b = rng.normal(size=50)
        plain = gmres(A, b, tol=1e-10, maxiter=2000)
        precond = gmres(A, b, tol=1e-10, maxiter=2000, precond=lambda v: v / d)
        assert precond.converged
        assert precond.iterations < plain.iterations

    def test_residual_history_monotone_within_cycle(self):
        rng = np.random.default_rng(5)
        A = rng.normal(size=(20, 20)) + 5 * np.eye(20)
        b = rng.normal(size=20)
        r = gmres(A, b, tol=1e-12)
        hist = r.residual_history
        assert all(b <= a + 1e-12 for a, b in zip(hist, hist[1:]))

    def test_flop_model_scales(self):
        assert gmres_flops(100, 20) > gmres_flops(100, 10)
        assert gmres_flops(200, 10) > gmres_flops(100, 10)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=2, max_value=25))
    def test_random_spd_systems(self, n):
        rng = np.random.default_rng(n)
        M = rng.normal(size=(n, n))
        A = M @ M.T + n * np.eye(n)
        b = rng.normal(size=n)
        r = gmres(A, b, tol=1e-10, maxiter=10 * n)
        assert r.converged
        np.testing.assert_allclose(A @ r.x, b, atol=1e-6 * max(1, np.linalg.norm(b)))


class TestBdf:
    def test_robertson_matches_scipy(self):
        ref = solve_ivp(robertson, (0, 100.0), [1.0, 0, 0], method="BDF",
                        rtol=1e-8, atol=1e-12)
        integ = BdfIntegrator(robertson, rtol=1e-5, atol=1e-9)
        res = integ.integrate(np.array([1.0, 0, 0]), 0.0, 100.0)
        np.testing.assert_allclose(res.y, ref.y[:, -1], rtol=1e-3)
        assert res.stats.steps > 0
        assert res.stats.newton_iters >= res.stats.steps

    def test_robertson_gmres_path(self):
        """PeleC's matrix-free configuration reaches the same answer."""
        dense = BdfIntegrator(robertson, rtol=1e-5, atol=1e-9)
        krylov = BdfIntegrator(robertson, rtol=1e-5, atol=1e-9,
                               linear_solver=LinearSolver.GMRES)
        y0 = np.array([1.0, 0, 0])
        rd = dense.integrate(y0, 0.0, 10.0)
        rk = krylov.integrate(y0, 0.0, 10.0)
        np.testing.assert_allclose(rd.y, rk.y, rtol=1e-3)
        assert rk.stats.linear_iters > 0
        assert rd.stats.linear_iters == 0

    def test_stiff_linear_system_vs_expm(self):
        A = np.array([[-1000.0, 1.0], [0.0, -0.5]])
        integ = BdfIntegrator(lambda t, y: A @ y, jac=lambda t, y: A,
                              rtol=1e-6, atol=1e-10, max_steps=200_000)
        r = integ.integrate(np.array([1.0, 1.0]), 0.0, 2.0)
        exact = sla.expm(2.0 * A) @ np.array([1.0, 1.0])
        np.testing.assert_allclose(r.y, exact, rtol=1e-3, atol=1e-9)

    def test_analytic_jacobian_reduces_rhs_evals(self):
        A = np.array([[-10.0, 1.0], [0.0, -1.0]])
        with_jac = BdfIntegrator(lambda t, y: A @ y, jac=lambda t, y: A,
                                 rtol=1e-6, atol=1e-9)
        without = BdfIntegrator(lambda t, y: A @ y, rtol=1e-6, atol=1e-9)
        y0 = np.array([1.0, 1.0])
        rj = with_jac.integrate(y0, 0.0, 1.0)
        rn = without.integrate(y0, 0.0, 1.0)
        assert rj.stats.rhs_evals < rn.stats.rhs_evals
        np.testing.assert_allclose(rj.y, rn.y, rtol=1e-4)

    def test_conservation_in_robertson(self):
        """Mass fractions sum to one throughout."""
        integ = BdfIntegrator(robertson, rtol=1e-6, atol=1e-10)
        res = integ.integrate(np.array([1.0, 0, 0]), 0.0, 1.0,
                              record_history=True)
        for y in res.y_history:
            assert abs(y.sum() - 1.0) < 1e-6

    def test_invalid_time_interval(self):
        integ = BdfIntegrator(lambda t, y: -y)
        with pytest.raises(IntegrationError):
            integ.integrate(np.array([1.0]), 1.0, 0.5)

    def test_max_steps_enforced(self):
        integ = BdfIntegrator(robertson, rtol=1e-10, atol=1e-14, max_steps=5)
        with pytest.raises(IntegrationError, match="max_steps"):
            integ.integrate(np.array([1.0, 0, 0]), 0.0, 100.0)

    def test_nonstiff_decay_accuracy(self):
        integ = BdfIntegrator(lambda t, y: -y, rtol=1e-7, atol=1e-11)
        r = integ.integrate(np.array([1.0]), 0.0, 1.0)
        assert r.y[0] == pytest.approx(np.exp(-1.0), rel=1e-4)

    def test_history_recording(self):
        integ = BdfIntegrator(lambda t, y: -y, rtol=1e-5, atol=1e-8)
        r = integ.integrate(np.array([1.0]), 0.0, 1.0, record_history=True)
        assert len(r.t_history) == len(r.y_history)
        assert r.t_history[0] == 0.0
        assert r.t_history[-1] == pytest.approx(1.0)
        assert all(a < b for a, b in zip(r.t_history, r.t_history[1:]))


class TestErk:
    def test_rk4_convergence_order(self):
        """Halving h must cut the error ~16x (4th order)."""
        y0 = np.array([1.0])
        e1 = abs(rk4(lambda t, y: -y, y0, 0, 1, 20).y[0] - np.exp(-1))
        e2 = abs(rk4(lambda t, y: -y, y0, 0, 1, 40).y[0] - np.exp(-1))
        assert e1 / e2 == pytest.approx(16.0, rel=0.2)

    def test_rk4_vector_system(self):
        # harmonic oscillator: y'' = -y
        def f(t, y):
            return np.array([y[1], -y[0]])

        r = rk4(f, np.array([1.0, 0.0]), 0, 2 * np.pi, 1000)
        np.testing.assert_allclose(r.y, [1.0, 0.0], atol=1e-6)

    def test_rk45_adapts(self):
        r = rk45(lambda t, y: -50 * y, np.array([1.0]), 0, 1, rtol=1e-8, atol=1e-10)
        assert r.y[0] == pytest.approx(np.exp(-50.0), abs=1e-10)
        assert r.steps > 10
        assert r.rhs_evals == pytest.approx(6 * (r.steps + r.rejected), abs=1)

    def test_rk45_rejects_steps_on_rough_problems(self):
        def f(t, y):
            return np.array([np.cos(40 * t) * 40])

        r = rk45(f, np.array([0.0]), 0, 1, rtol=1e-9, atol=1e-12)
        assert r.y[0] == pytest.approx(np.sin(40.0), abs=1e-6)

    def test_rk4_input_validation(self):
        with pytest.raises(ValueError):
            rk4(lambda t, y: -y, np.array([1.0]), 0, 1, 0)
        with pytest.raises(ValueError):
            rk4(lambda t, y: -y, np.array([1.0]), 1, 0, 10)

    @settings(max_examples=15, deadline=None)
    @given(st.floats(min_value=0.1, max_value=3.0))
    def test_rk45_matches_exponential(self, rate):
        r = rk45(lambda t, y: -rate * y, np.array([1.0]), 0, 1, rtol=1e-9, atol=1e-12)
        assert r.y[0] == pytest.approx(np.exp(-rate), rel=1e-6)
