"""Tests for the batched BDF integrator and its supporting substrates.

The batched path (§3.8's CVODE+MAGMA motif) must reproduce the scalar
integrator's answers: same per-cell BDF(1,2) algorithm, just advanced in
lockstep with batched linear algebra.  The property test drives both on
batches of random stiff linear systems — including badly ragged batches
where per-cell stiffness spans several decades so cells converge at very
different rates — and checks agreement within solver tolerances.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.linalg import expm

from repro.chem.codegen import compile_batched_kernels, compile_rates
from repro.chem.kinetics import (
    analytic_jacobian,
    analytic_jacobian_batch,
    production_rates,
    production_rates_batch,
)
from repro.chem.mechanism import h2_o2_mechanism
from repro.linalg import BatchedLU, batched_lu_factor, batched_lu_solve_factored
from repro.ode import BatchedBdfIntegrator, BdfIntegrator, IntegrationError


def _random_stiff_batch(seed: int, ncells: int, n: int):
    """Per-cell stable linear systems with stiffness spread over decades."""
    rng = np.random.default_rng(seed)
    A = np.empty((ncells, n, n))
    for b in range(ncells):
        lam = -(10.0 ** rng.uniform(-1.0, 3.0, n))  # decades of stiffness
        Q = rng.standard_normal((n, n)) * 0.3 + np.eye(n)
        A[b] = Q @ np.diag(lam) @ np.linalg.inv(Q)
    y0 = rng.uniform(0.5, 1.5, (ncells, n))
    return A, y0


class TestBatchedLUFactor:
    def test_factored_solve_matches_numpy(self):
        rng = np.random.default_rng(3)
        mats = rng.standard_normal((8, 5, 5)) + 5.0 * np.eye(5)
        rhs = rng.standard_normal((8, 5))
        lu, piv = batched_lu_factor(mats)
        x = batched_lu_solve_factored(lu, piv, rhs)
        ref = np.stack([np.linalg.solve(m, b) for m, b in zip(mats, rhs)])
        assert np.allclose(x, ref, atol=1e-10)

    def test_pivoting_handles_zero_diagonal(self):
        mats = np.array([[[0.0, 1.0], [1.0, 0.0]]])
        rhs = np.array([[2.0, 3.0]])
        lu, piv = batched_lu_factor(mats)
        x = batched_lu_solve_factored(lu, piv, rhs)
        assert np.allclose(x, [[3.0, 2.0]])

    def test_factor_once_solve_many(self):
        rng = np.random.default_rng(4)
        mats = rng.standard_normal((6, 4, 4)) + 4.0 * np.eye(4)
        handle = BatchedLU(mats)
        for k in range(3):
            rhs = rng.standard_normal((6, 4))
            ref = np.stack([np.linalg.solve(m, b) for m, b in zip(mats, rhs)])
            assert np.allclose(handle.solve(rhs), ref, atol=1e-10)

    def test_subset_solve_and_update(self):
        rng = np.random.default_rng(5)
        mats = rng.standard_normal((6, 3, 3)) + 3.0 * np.eye(3)
        handle = BatchedLU(mats)
        idx = np.array([1, 4])
        rhs = rng.standard_normal((2, 3))
        ref = np.stack([np.linalg.solve(mats[i], b) for i, b in zip(idx, rhs)])
        assert np.allclose(handle.solve_subset(idx, rhs), ref, atol=1e-10)
        fresh = rng.standard_normal((2, 3, 3)) + 3.0 * np.eye(3)
        handle.update(idx, fresh)
        ref2 = np.stack([np.linalg.solve(m, b) for m, b in zip(fresh, rhs)])
        assert np.allclose(handle.solve_subset(idx, rhs), ref2, atol=1e-10)


class TestBatchedKinetics:
    def test_rates_batch_matches_per_cell(self):
        mech = h2_o2_mechanism()
        rng = np.random.default_rng(0)
        conc = rng.uniform(0.01, 1.0, (5, mech.n_species))
        T = rng.uniform(900.0, 1500.0, 5)
        batch = production_rates_batch(mech, T, conc)
        for i in range(5):
            ref = production_rates(mech, float(T[i]), conc[i])
            assert np.allclose(batch[i], ref, rtol=1e-12)

    def test_jacobian_batch_matches_per_cell(self):
        mech = h2_o2_mechanism()
        rng = np.random.default_rng(1)
        conc = rng.uniform(0.01, 1.0, (4, mech.n_species))
        T = rng.uniform(900.0, 1500.0, 4)
        batch = analytic_jacobian_batch(mech, T, conc)
        for i in range(4):
            ref = analytic_jacobian(mech, float(T[i]), conc[i])
            assert np.allclose(batch[i], ref, rtol=1e-10, atol=1e-8)

    def test_generated_batched_kernels_match_interpreted(self):
        mech = h2_o2_mechanism()
        kernels = compile_batched_kernels(mech)
        rng = np.random.default_rng(2)
        conc = rng.uniform(0.01, 1.0, (6, mech.n_species))
        T = rng.uniform(900.0, 1500.0, 6)
        assert np.allclose(kernels.rates(T, conc),
                           production_rates_batch(mech, T, conc), rtol=1e-12)
        assert np.allclose(kernels.jacobian(T, conc),
                           analytic_jacobian_batch(mech, T, conc), rtol=1e-10)

    def test_rates_broadcast_leading_axes(self):
        # the FD-Jacobian contract: a stacked (k, B, n) state evaluates
        # column-by-column identically to k separate (B, n) evaluations
        mech = h2_o2_mechanism()
        kernels = compile_batched_kernels(mech)
        rng = np.random.default_rng(3)
        stacked = rng.uniform(0.01, 1.0, (3, 4, mech.n_species))
        T = rng.uniform(900.0, 1500.0, 4)
        out = kernels.rates(T, stacked)
        assert out.shape == stacked.shape
        for k in range(3):
            assert np.allclose(out[k], kernels.rates(T, stacked[k]))

    def test_codegen_memoized_per_mechanism(self):
        mech = h2_o2_mechanism()
        assert compile_batched_kernels(mech) is compile_batched_kernels(mech)
        assert compile_rates(mech) is compile_rates(mech)
        # an equivalent-but-distinct Mechanism object hits the same cache
        assert compile_batched_kernels(h2_o2_mechanism()) is (
            compile_batched_kernels(mech)
        )


class TestBatchedBdf:
    def test_exponential_decay_batch(self):
        lam = np.array([1.0, 10.0, 100.0])
        integ = BatchedBdfIntegrator(
            lambda t, y: -lam[:, None] * y, rtol=1e-8, atol=1e-12)
        res = integ.integrate(np.ones((3, 1)), 0.0, 1.0)
        assert np.allclose(res.y[:, 0], np.exp(-lam), rtol=1e-5)
        assert np.all(res.t == 1.0)

    def test_matches_exact_solution_mixed_stiffness(self):
        A, y0 = _random_stiff_batch(7, ncells=6, n=3)
        integ = BatchedBdfIntegrator(
            lambda t, y: np.einsum("bij,...bj->...bi", A, y),
            rtol=1e-7, atol=1e-10)
        res = integ.integrate(y0, 0.0, 0.5)
        exact = np.stack([expm(0.5 * A[b]) @ y0[b] for b in range(len(A))])
        assert np.allclose(res.y, exact, rtol=1e-4, atol=1e-7)

    def test_fd_jacobian_matches_analytic_path(self):
        A, y0 = _random_stiff_batch(11, ncells=4, n=3)

        def rhs(t, y):
            return np.einsum("bij,...bj->...bi", A, y)

        fd = BatchedBdfIntegrator(rhs, rtol=1e-7, atol=1e-10)
        an = BatchedBdfIntegrator(
            rhs, jac=lambda t, y: A, rtol=1e-7, atol=1e-10)
        rf = fd.integrate(y0, 0.0, 0.3)
        ra = an.integrate(y0, 0.0, 0.3)
        assert np.allclose(rf.y, ra.y, rtol=1e-5, atol=1e-8)
        # analytic path never sweeps the RHS to build Jacobians
        assert ra.stats.rhs_sweeps < rf.stats.rhs_sweeps

    def test_jacobian_reuse_keeps_builds_far_below_steps(self):
        A, y0 = _random_stiff_batch(13, ncells=5, n=3)
        integ = BatchedBdfIntegrator(
            lambda t, y: np.einsum("bij,...bj->...bi", A, y),
            rtol=1e-6, atol=1e-9)
        res = integ.integrate(y0, 0.0, 1.0)
        assert res.stats.jac_builds < res.stats.steps / 5

    def test_validates_inputs(self):
        integ = BatchedBdfIntegrator(lambda t, y: -y)
        with pytest.raises(IntegrationError):
            integ.integrate(np.ones((2, 2)), 1.0, 0.0)
        with pytest.raises(IntegrationError):
            integ.integrate(np.ones(3), 0.0, 1.0)

    def test_step_underflow_raises(self):
        def discontinuous(t, y):
            t_arr = np.broadcast_to(np.asarray(t, dtype=float), y.shape[-2])
            bad = (t_arr > 0.5)[..., None]
            return np.where(bad, np.inf, -y)

        integ = BatchedBdfIntegrator(discontinuous, rtol=1e-8, atol=1e-12)
        with pytest.raises((IntegrationError, FloatingPointError, ValueError)):
            integ.integrate(np.ones((2, 1)), 0.0, 1.0)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 10_000),
       ncells=st.integers(2, 5),
       n=st.integers(2, 4))
def test_batched_matches_scalar_property(seed, ncells, n):
    """Batched and scalar BDF agree on random ragged stiff batches."""
    A, y0 = _random_stiff_batch(seed, ncells, n)
    rtol, atol = 1e-6, 1e-9
    batched = BatchedBdfIntegrator(
        lambda t, y: np.einsum("bij,...bj->...bi", A, y),
        jac=lambda t, y: A, rtol=rtol, atol=atol)
    res = batched.integrate(y0, 0.0, 0.5)
    for b in range(ncells):
        scalar = BdfIntegrator(lambda t, y, Ab=A[b]: Ab @ y,
                               rtol=rtol, atol=atol)
        ref = scalar.integrate(y0[b].copy(), 0.0, 0.5).y
        # both carry O(tol) local error; compare against a shared band
        scale = np.abs(ref) + np.abs(y0[b]).max()
        assert np.all(np.abs(res.y[b] - ref) <= 200 * rtol * scale + 100 * atol)
