"""Tests for OpenMP target-offload semantics and the data-motion ledger."""

import pytest

from repro.gpu import KernelSpec
from repro.hardware.gpu import MI250X_GCD
from repro.progmodel import MapKind, OpenMPDevice, OpenMPTargetError
from repro.progmodel.openmp import OPENMP_KERNEL_DERATE


def kern(name="loop", flops=1e9):
    return KernelSpec(name=name, flops=flops, bytes_read=1e7)


MB = 1 << 20


class TestTargetData:
    def test_structured_region_moves_to_and_from(self):
        omp = OpenMPDevice(MI250X_GCD)
        with omp.target_data(state=(8 * MB, MapKind.TOFROM)):
            omp.target_parallel_loop(kern(), uses=("state",))
        assert omp.ledger.h2d_bytes == 8 * MB
        assert omp.ledger.d2h_bytes == 8 * MB

    def test_to_map_never_copies_back(self):
        omp = OpenMPDevice(MI250X_GCD)
        with omp.target_data(coeffs=(MB, MapKind.TO)):
            pass
        assert omp.ledger.h2d_bytes == MB
        assert omp.ledger.d2h_bytes == 0

    def test_from_map_only_copies_back(self):
        omp = OpenMPDevice(MI250X_GCD)
        with omp.target_data(result=(MB, MapKind.FROM)):
            pass
        assert omp.ledger.h2d_bytes == 0
        assert omp.ledger.d2h_bytes == MB

    def test_alloc_map_never_transfers(self):
        omp = OpenMPDevice(MI250X_GCD)
        with omp.target_data(scratch=(MB, MapKind.ALLOC)):
            pass
        assert omp.ledger.total_bytes == 0

    def test_persistent_region_beats_naive_mapping(self):
        """The §2.2 guidance: large TARGET DATA region with persistent
        arrays avoids repeated data movement."""
        arrays = {"u": 64 * MB, "rhs": 64 * MB}
        steps = 20

        naive = OpenMPDevice(MI250X_GCD)
        for _ in range(steps):
            naive.naive_offload_loop(kern(), arrays)

        good = OpenMPDevice(MI250X_GCD)
        with good.target_data(u=(64 * MB, MapKind.TOFROM), rhs=(64 * MB, MapKind.TO)):
            for _ in range(steps):
                good.target_parallel_loop(kern(), uses=("u", "rhs"))

        assert good.ledger.total_bytes < naive.ledger.total_bytes / (steps / 2)
        assert good.elapsed < naive.elapsed


class TestUnstructuredData:
    def test_enter_exit_pair(self):
        omp = OpenMPDevice(MI250X_GCD)
        omp.target_enter_data("mesh", 4 * MB, MapKind.TO)
        omp.target_parallel_loop(kern(), uses=("mesh",))
        omp.target_exit_data("mesh", MapKind.FROM)
        assert omp.ledger.h2d_bytes == 4 * MB
        assert omp.ledger.d2h_bytes == 4 * MB

    def test_double_enter_rejected(self):
        omp = OpenMPDevice(MI250X_GCD)
        omp.target_enter_data("x", MB)
        with pytest.raises(OpenMPTargetError):
            omp.target_enter_data("x", MB)

    def test_exit_without_enter_rejected(self):
        omp = OpenMPDevice(MI250X_GCD)
        with pytest.raises(OpenMPTargetError):
            omp.target_exit_data("nothing")

    def test_omp_target_alloc_is_device_only(self):
        omp = OpenMPDevice(MI250X_GCD)
        omp.omp_target_alloc("persistent", 128 * MB)
        omp.target_parallel_loop(kern(), uses=("persistent",))
        assert omp.ledger.total_bytes == 0


class TestTargetUpdate:
    def test_update_to_from(self):
        omp = OpenMPDevice(MI250X_GCD)
        omp.target_enter_data("halo", MB, MapKind.ALLOC)
        omp.target_update_to("halo")
        omp.target_update_from("halo")
        assert omp.ledger.h2d_transfers == 1
        assert omp.ledger.d2h_transfers == 1

    def test_update_outside_region_rejected(self):
        omp = OpenMPDevice(MI250X_GCD)
        with pytest.raises(OpenMPTargetError):
            omp.target_update_to("unmapped")

    def test_nowait_overlaps_with_compute(self):
        """TARGET UPDATE ... NOWAIT lets transfer and kernel overlap (§2.2)."""
        big = 512 * MB

        blocking = OpenMPDevice(MI250X_GCD)
        blocking.target_enter_data("field", big, MapKind.ALLOC)
        blocking.target_update_to("field")
        blocking.target_parallel_loop(kern(flops=1e12), uses=("field",))
        blocking.synchronize()

        overlapped = OpenMPDevice(MI250X_GCD)
        overlapped.target_enter_data("field", big, MapKind.ALLOC)
        stream = overlapped.device.create_stream()
        overlapped.target_update_to("field", nowait=True, stream=stream)
        overlapped.target_parallel_loop(kern(flops=1e12), uses=("field",))
        overlapped.synchronize()

        assert overlapped.elapsed < blocking.elapsed


class TestUseDevicePtr:
    def test_returns_token_for_mapped_array(self):
        omp = OpenMPDevice(MI250X_GCD)
        omp.target_enter_data("buf", MB)
        assert omp.use_device_ptr("buf") == "devptr:buf"

    def test_rejects_unmapped(self):
        omp = OpenMPDevice(MI250X_GCD)
        with pytest.raises(OpenMPTargetError):
            omp.use_device_ptr("buf")


class TestPerformanceParity:
    def test_openmp_kernels_slower_than_hip(self):
        """'OpenMP codes did not achieve performance parity to HIP' (§2.2)."""
        from repro.gpu import Device

        k = kern(flops=1e12)
        hip = Device(MI250X_GCD)
        hip.launch_sync(k)

        omp = OpenMPDevice(MI250X_GCD)
        omp.omp_target_alloc("x", MB)
        omp.target_parallel_loop(k, uses=("x",))

        assert omp.elapsed > hip.elapsed
        assert omp.elapsed == pytest.approx(hip.elapsed / OPENMP_KERNEL_DERATE, rel=0.05)

    def test_kernel_on_unmapped_array_rejected(self):
        omp = OpenMPDevice(MI250X_GCD)
        with pytest.raises(OpenMPTargetError, match="outside any data region"):
            omp.target_parallel_loop(kern(), uses=("missing",))
