"""Tests for the HACC/ExaSky substrate: P3M gravity and the cosmology driver."""

import numpy as np
import pytest

from repro.gpu.perfmodel import time_kernel
from repro.hardware.gpu import MI100, V100
from repro.particles import (
    NBodySystem,
    PMGrid,
    cic_deposit,
    cic_gather,
    direct_forces,
    hacc_gravity_kernels,
    long_range_forces,
    p3m_forces,
    short_range_forces,
    short_range_pair_force,
    zeldovich_ics,
)


class TestCIC:
    def test_mass_conservation(self):
        grid = PMGrid(n=16, box_size=16.0)
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 16, size=(50, 3))
        m = rng.uniform(0.5, 2.0, 50)
        rho = cic_deposit(x, m, grid)
        assert rho.sum() * grid.cell**3 == pytest.approx(m.sum())

    def test_particle_on_gridpoint_deposits_locally(self):
        grid = PMGrid(n=8, box_size=8.0)
        x = np.array([[3.0, 3.0, 3.0]])
        rho = cic_deposit(x, np.ones(1), grid)
        assert rho[3, 3, 3] == pytest.approx(1.0)

    def test_gather_is_interpolation(self):
        grid = PMGrid(n=8, box_size=8.0)
        field = np.zeros((8, 8, 8))
        field[3, 3, 3] = 1.0
        # halfway between grid points 3 and 4 in x
        val = cic_gather(field, np.array([[3.5, 3.0, 3.0]]), grid)
        assert val[0] == pytest.approx(0.5)

    def test_periodic_wrap(self):
        grid = PMGrid(n=8, box_size=8.0)
        x = np.array([[7.9, 0.0, 0.0]])
        rho = cic_deposit(x, np.ones(1), grid)
        assert rho.sum() * grid.cell**3 == pytest.approx(1.0)
        assert rho[0, 0, 0] > 0  # wrapped contribution


class TestGravity:
    def test_pair_forces_equal_opposite(self):
        grid = PMGrid(n=32, box_size=32.0)
        x = np.array([[12.0, 16.0, 16.0], [20.0, 16.0, 16.0]])
        f = p3m_forces(x, np.ones(2), grid)
        np.testing.assert_allclose(f[0], -f[1], atol=1e-12)

    def test_close_pair_matches_newton(self):
        """At r << box, periodic images are negligible: F ≈ Gm²/r²."""
        grid = PMGrid(n=64, box_size=64.0)
        r = 4.0
        x = np.array([[30.0, 32.0, 32.0], [30.0 + r, 32.0, 32.0]])
        f = p3m_forces(x, np.ones(2), grid)
        newton = 1.0 / r**2
        assert f[0, 0] == pytest.approx(newton, rel=0.1)
        assert abs(f[0, 1]) < 0.05 * newton

    def test_attractive_direction(self):
        grid = PMGrid(n=32, box_size=32.0)
        x = np.array([[10.0, 16.0, 16.0], [20.0, 16.0, 16.0]])
        f = p3m_forces(x, np.ones(2), grid)
        assert f[0, 0] > 0  # particle 0 pulled toward +x
        assert f[1, 0] < 0

    def test_short_range_component_decays_within_cutoff(self):
        assert short_range_pair_force(1.0, 0.5) > short_range_pair_force(2.0, 0.5)
        # beyond ~5 r_s the short-range force is negligible vs Newtonian
        assert short_range_pair_force(5.0, 0.5) < 1e-4 * (1 / 25.0)

    def test_short_range_validates(self):
        with pytest.raises(ValueError):
            short_range_pair_force(0.0, 0.5)

    def test_long_plus_short_beats_mesh_alone_at_close_range(self):
        """Sub-cell separations need the short-range kernel."""
        grid = PMGrid(n=16, box_size=16.0)
        r = 0.6  # below one cell
        x = np.array([[8.0, 8.0, 8.0], [8.0 + r, 8.0, 8.0]])
        m = np.ones(2)
        mesh_only = long_range_forces(x, m, grid)
        total = p3m_forces(x, m, grid)
        newton = 1.0 / r**2
        assert abs(total[0, 0] - newton) < abs(mesh_only[0, 0] - newton)

    def test_direct_forces_match_newton(self):
        x = np.array([[0.0, 0.0, 0.0], [3.0, 0.0, 0.0]])
        f = direct_forces(x, np.ones(2))
        assert f[0, 0] == pytest.approx(1.0 / 9.0)

    def test_momentum_conserved_many_body(self):
        grid = PMGrid(n=16, box_size=16.0)
        rng = np.random.default_rng(1)
        x = rng.uniform(0, 16, size=(20, 3))
        m = rng.uniform(0.5, 2.0, 20)
        f = p3m_forces(x, m, grid)
        np.testing.assert_allclose(f.sum(axis=0), 0.0, atol=1e-8 * np.abs(f).max())


class TestVectorizedPairKernels:
    """The triangular-broadcast force sweeps against the naive pair loops."""

    @staticmethod
    def _cloud(n, seed=0, box=4.0):
        rng = np.random.default_rng(seed)
        return rng.uniform(0, box, (n, 3)), rng.uniform(0.5, 2.0, n)

    def test_short_range_matches_naive_loop(self):
        x, m = self._cloud(60, seed=4)
        vec = short_range_forces(x, m, 4.0, rs=0.4)
        naive = short_range_forces(x, m, 4.0, rs=0.4, vectorized=False)
        np.testing.assert_allclose(vec, naive, rtol=0, atol=1e-10)

    def test_direct_matches_naive_loop(self):
        x, m = self._cloud(60, seed=5)
        np.testing.assert_allclose(
            direct_forces(x, m),
            direct_forces(x, m, vectorized=False),
            rtol=0, atol=1e-10,
        )

    def test_coincident_particles_are_skipped(self):
        x = np.zeros((3, 3))
        assert np.all(direct_forces(x, np.ones(3)) == 0.0)
        assert np.all(short_range_forces(x, np.ones(3), 1.0, rs=0.1) == 0.0)

    def test_single_particle_feels_nothing(self):
        x = np.array([[0.5, 0.5, 0.5]])
        assert np.all(short_range_forces(x, np.ones(1), 1.0, rs=0.1) == 0.0)
        assert np.all(direct_forces(x, np.ones(1)) == 0.0)

    def test_pair_force_accepts_arrays(self):
        r = np.array([0.5, 1.0, 2.0])
        vals = short_range_pair_force(r, 0.5)
        assert vals.shape == r.shape
        assert np.all(np.diff(vals) < 0)  # monotone decay
        with pytest.raises(ValueError):
            short_range_pair_force(np.array([1.0, 0.0]), 0.5)

    def test_cutoff_respected_on_vectorized_path(self):
        x = np.array([[0.0, 0.0, 0.0], [2.0, 0.0, 0.0]])
        f = short_range_forces(x, np.ones(2), 10.0, rs=0.1, cutoff=1.0)
        assert np.all(f == 0.0)


class TestCosmologyDriver:
    def test_zeldovich_ics_shape(self):
        x, v = zeldovich_ics(4, 16.0, seed=0)
        assert x.shape == (64, 3) and v.shape == (64, 3)
        assert np.all((x >= 0) & (x < 16.0))

    def test_zeldovich_validates(self):
        with pytest.raises(ValueError):
            zeldovich_ics(1, 16.0)

    def test_leapfrog_conserves_momentum(self):
        grid = PMGrid(n=16, box_size=16.0)
        x, v = zeldovich_ics(3, 16.0, seed=2)
        m = np.ones(len(x))
        sys = NBodySystem(x=x, v=v, masses=m, grid=grid)
        p0 = sys.momentum()
        for _ in range(3):
            sys.step(0.05)
        np.testing.assert_allclose(sys.momentum(), p0, atol=1e-8)

    def test_gravity_kernel_catalogue(self):
        kernels = hacc_gravity_kernels(1_000_000)
        assert len(kernels) == 6
        sensitive = [k for k in kernels if k.divergence_wavefront_sensitive]
        assert len(sensitive) == 1
        assert sensitive[0].name == "sr_filtered_walk"

    def test_filtered_walk_regresses_on_wide_wavefronts(self):
        """§3.4: exactly one of six kernels is slower on wavefront-64."""
        kernels = hacc_gravity_kernels(1_000_000)
        regressed = []
        for k in kernels:
            tv = time_kernel(k, V100).total_time
            tm = time_kernel(k, MI100).total_time
            # MI100 has higher FP32 peak; a kernel that is *slower* there
            # anyway must be the wavefront-sensitive one
            if tm > tv:
                regressed.append(k.name)
        assert regressed == ["sr_filtered_walk"]
