"""Tests for the CUDA/HIP facades, macro layer, and thin abstraction."""

import pytest

from repro.gpu import KernelSpec
from repro.hardware.gpu import MI250X_GCD, V100
from repro.progmodel import (
    CudaRuntime,
    GpuApiError,
    HipRuntime,
    HipUnsupportedFeature,
    MacroLayer,
    MissingApiParity,
    make_device_layer,
)


def kern(flops=1e10):
    return KernelSpec(name="k", flops=flops, bytes_read=1e7)


class TestCudaRuntime:
    def test_basic_workflow(self):
        rt = CudaRuntime()
        h = rt.cudaMalloc(1 << 20)
        rt.cudaMemcpyHostToDevice(h)
        rt.cudaLaunchKernel(kern())
        rt.cudaDeviceSynchronize()
        rt.cudaMemcpyDeviceToHost(h)
        rt.cudaFree(h)
        assert rt.elapsed > 0

    def test_cuda_rejects_amd_devices(self):
        with pytest.raises(GpuApiError):
            CudaRuntime(MI250X_GCD)

    def test_event_timing_in_milliseconds(self):
        rt = CudaRuntime()
        start, end = rt.cudaEventCreate(), rt.cudaEventCreate()
        rt.cudaEventRecord(start)
        rt.cudaLaunchKernel(kern(flops=1e12))
        rt.cudaEventRecord(end)
        rt.cudaEventSynchronize(end)
        ms = rt.cudaEventElapsedTime(start, end)
        secs = 1e12 / V100.peak_flops[list(V100.peak_flops)[0]]  # loose bound
        assert ms > 0
        assert ms / 1e3 < 10 * secs + 1.0

    def test_multi_device(self):
        rt = CudaRuntime(V100, count=6)
        assert rt.cudaGetDeviceCount() == 6
        rt.cudaSetDevice(3)
        assert rt.cudaGetDevice() == 3
        with pytest.raises(GpuApiError):
            rt.cudaSetDevice(6)

    def test_oversized_copy_rejected(self):
        rt = CudaRuntime()
        h = rt.cudaMalloc(100)
        with pytest.raises(GpuApiError):
            rt.cudaMemcpyHostToDevice(h, 200)

    def test_stream_overlap(self):
        rt = CudaRuntime()
        s = rt.cudaStreamCreate()
        rt.cudaLaunchKernel(kern(flops=1e12))
        rt.cudaLaunchKernel(kern(flops=1e12), stream=s)
        rt.cudaDeviceSynchronize()
        single = 1e12 / 7.8e12
        assert rt.elapsed < 2 * single


class TestHipRuntime:
    def test_hip_drives_amd(self):
        rt = HipRuntime()
        assert rt.backend == "rocm"
        h = rt.hipMalloc(1 << 20)
        rt.hipMemcpyHostToDevice(h)
        rt.hipLaunchKernel(kern())
        rt.hipDeviceSynchronize()
        assert rt.elapsed > 0

    def test_hip_on_nvidia_is_shim(self):
        rt = HipRuntime(V100)
        assert rt.backend == "cuda-shim"

    def test_hip_nvidia_overhead_is_tiny(self):
        """The structural fact behind Figure 1: HIP ≈ CUDA on NVIDIA."""
        k = kern(flops=1e11)

        cuda = CudaRuntime(V100)
        cuda.cudaLaunchKernel(k)
        cuda.cudaDeviceSynchronize()

        hip = HipRuntime(V100)
        hip.hipLaunchKernel(k)
        hip.hipDeviceSynchronize()

        ratio = cuda.elapsed / hip.elapsed
        assert 0.99 < ratio <= 1.0

    def test_unsupported_cuda_features_raise(self):
        rt = HipRuntime()
        with pytest.raises(HipUnsupportedFeature):
            rt.require_feature("cudaGraphLaunch")
        rt.require_feature("cudaMalloc")  # supported: no raise


class TestMacroLayer:
    def test_generic_names_dispatch_cuda(self):
        ml = MacroLayer(V100)
        assert ml.backend_name == "cuda"
        h = ml.gpuMalloc(1 << 16)
        ml.gpuMemcpyHostToDevice(h)
        ml.gpuLaunchKernel(kern())
        ml.gpuDeviceSynchronize()
        assert ml.elapsed > 0

    def test_generic_names_dispatch_hip(self):
        ml = MacroLayer(MI250X_GCD)
        assert ml.backend_name == "hip"
        h = ml.gpuMalloc(1 << 16)
        ml.gpuFree(h)

    def test_cuda_spelling_on_hip_backend(self):
        """Code may remain in CUDA and run on AMD via macros (§2.1)."""
        ml = MacroLayer(MI250X_GCD)
        h = ml.cudaMalloc(1 << 16)
        ml.cudaLaunchKernel(kern())
        ml.cudaDeviceSynchronize()
        ml.cudaFree(h)

    def test_hip_spelling_on_cuda_backend(self):
        ml = MacroLayer(V100)
        h = ml.hipMalloc(1 << 16)
        ml.hipFree(h)

    def test_missing_parity_raises(self):
        ml = MacroLayer(V100)
        with pytest.raises(MissingApiParity):
            ml.cudaGraphLaunch  # noqa: B018 - attribute resolution is the call


class TestDeviceLayer:
    def test_cuda_layer(self):
        layer = make_device_layer("cuda")
        layer.set_device(0)
        h = layer.device_malloc(1 << 16)
        layer.device_launch(kern())
        layer.device_synchronize()
        layer.device_free(h)
        assert layer.backend == "cuda"

    def test_hip_layer(self):
        layer = make_device_layer("hip")
        s = layer.device_stream_create()
        layer.device_launch(kern(), stream=s)
        layer.device_stream_synchronize(s)
        assert layer.backend == "hip"
        assert layer.elapsed > 0

    def test_same_source_both_backends(self):
        """The COAST property: one code path, two compile-time backends."""
        def app(layer):
            h = layer.device_malloc(1 << 20)
            layer.device_launch(kern(flops=1e11))
            layer.device_synchronize()
            layer.device_free(h)
            return layer.elapsed

        t_cuda = app(make_device_layer("cuda"))
        t_hip = app(make_device_layer("hip"))
        assert t_cuda > 0 and t_hip > 0
        assert t_hip < t_cuda  # MI250X GCD beats V100 on this kernel

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            make_device_layer("opencl")
