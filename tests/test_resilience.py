"""Resilience subsystem: snapshots, fault injection, recovery, Young/Daly.

The subsystem's contract is exactness: because every app is
deterministic and every snapshot is bit-exact, a fault-injected campaign
must finish in *the same bits* as a failure-free one.  These tests pin
that contract (including property-based round-trips over every
Checkpointable), the fault process's determinism, the runner's
accounting identity, and the Young/Daly sweet spot against a measured
overhead-vs-interval curve.
"""

import ast
import pathlib

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.amr import AmrHierarchy, Box
from repro.apps.exasky import ExaskyCampaign
from repro.apps.pele import PeleChemistryCampaign
from repro.gpu.device import Device
from repro.hardware.gpu import MI250X_GCD
from repro.hardware.interconnect import SLINGSHOT_11
from repro.hydro.reacting import ignition_demo
from repro.mpisim import RankFailedError, SimComm
from repro.ode import BatchedBdfIntegrator
from repro.resilience import (
    CheckpointCostModel,
    DeviceOomFault,
    FaultInjector,
    FaultKind,
    RankFailureFault,
    ResilienceError,
    ResilientRunner,
    Snapshot,
    SnapshotError,
    daly_expected_runtime,
    decode_snapshot,
    encode_snapshot,
    machine_checkpoint_cost,
    optimal_interval_for_machine,
    predicted_overhead,
    snapshot_checksum,
    snapshot_equal,
    system_mtbf,
    young_daly_interval,
)

SRC = pathlib.Path(__file__).resolve().parents[1] / "src"


# -- snapshot codec -------------------------------------------------------------


class TestSnapshotCodec:
    def test_round_trip_every_type(self):
        payload = {
            "i": -42,
            "f": 3.14159,
            "b": True,
            "s": "héllo",
            "y": b"\x00\xffraw",
            "none": None,
            "arr_f8": np.linspace(0, 1, 7),
            "arr_i8": np.arange(12, dtype=np.int64).reshape(3, 4),
            "arr_bool": np.array([True, False, True]),
            "arr_0d": np.float64(2.5) * np.ones(()),
            "nested": {"list": [1, 2.0, "three"], "tuple": (4, None)},
        }
        snap = Snapshot("test.kind", 3, payload)
        out = decode_snapshot(encode_snapshot(snap))
        assert out.kind == "test.kind" and out.version == 3
        assert out.payload["i"] == -42
        assert out.payload["s"] == "héllo"
        assert out.payload["y"] == b"\x00\xffraw"
        assert out.payload["none"] is None
        np.testing.assert_array_equal(out.payload["arr_i8"],
                                      payload["arr_i8"])
        assert out.payload["arr_i8"].dtype == np.int64
        assert out.payload["nested"]["tuple"] == (4, None)
        assert snapshot_equal(snap, out)

    def test_encoding_is_deterministic_and_key_order_free(self):
        a = Snapshot("k", 1, {"x": 1, "y": np.ones(3)})
        b = Snapshot("k", 1, {"y": np.ones(3), "x": 1})
        assert encode_snapshot(a) == encode_snapshot(b)
        assert snapshot_checksum(encode_snapshot(a)) == snapshot_checksum(
            encode_snapshot(b))

    def test_checksum_sees_single_bit_changes(self):
        blob = encode_snapshot(Snapshot("k", 1, {"x": np.zeros(8)}))
        tampered = blob[:-1] + bytes([blob[-1] ^ 1])
        assert snapshot_checksum(blob) != snapshot_checksum(tampered)

    def test_trailing_garbage_rejected(self):
        blob = encode_snapshot(Snapshot("k", 1, {"x": 1}))
        with pytest.raises(SnapshotError):
            decode_snapshot(blob + b"\x00")

    def test_truncation_rejected(self):
        blob = encode_snapshot(Snapshot("k", 1, {"x": np.arange(100)}))
        with pytest.raises(SnapshotError):
            decode_snapshot(blob[:-5])

    def test_bad_magic_rejected(self):
        with pytest.raises(SnapshotError):
            decode_snapshot(b"NOPE" + b"\x00" * 64)

    @given(st.dictionaries(
        st.text(min_size=1, max_size=8),
        st.one_of(
            st.integers(min_value=-2**62, max_value=2**62),
            st.floats(allow_nan=False),
            st.booleans(),
            st.text(max_size=16),
            st.binary(max_size=16),
            st.none(),
            st.lists(st.integers(min_value=-100, max_value=100), max_size=4),
        ),
        max_size=6,
    ))
    @settings(max_examples=50, deadline=None)
    def test_property_round_trip(self, payload):
        snap = Snapshot("prop.kind", 1, payload)
        blob = encode_snapshot(snap)
        out = decode_snapshot(blob)
        assert encode_snapshot(out) == blob
        assert out.payload == payload


# -- Checkpointable round-trips -------------------------------------------------


def _exasky(seed, steps):
    app = ExaskyCampaign(nparticles=128, seed=seed)
    for _ in range(steps):
        app.step()
    return app


def _amr(seed, steps):
    h = AmrHierarchy(Box(lo=(0, 0, 0), hi=(15, 15, 15)), max_levels=2 + steps % 2,
                     max_grid_size=8)
    h.regrid(lambda b: b.lo[0] < 8 + seed % 8)
    return h


def _reacting(seed, steps):
    return ignition_demo(12 + seed % 4, steps=steps)


def _pele(seed, steps):
    app = PeleChemistryCampaign(ncells=4, seed=seed)
    for _ in range(steps):
        app.step()
    return app


class TestCheckpointableRoundTrips:
    """restore(snapshot(x)) is bit-identical for every implementer."""

    @given(seed=st.integers(min_value=0, max_value=10),
           steps=st.integers(min_value=0, max_value=2))
    @settings(max_examples=15, deadline=None)
    def test_exasky_round_trip(self, seed, steps):
        self._assert_round_trip(_exasky(seed, steps), _exasky(seed + 1, 0))

    @given(seed=st.integers(min_value=0, max_value=10),
           steps=st.integers(min_value=0, max_value=2))
    @settings(max_examples=10, deadline=None)
    def test_amr_round_trip(self, seed, steps):
        self._assert_round_trip(_amr(seed, steps), _amr(seed + 1, 0))

    @given(seed=st.integers(min_value=0, max_value=4),
           steps=st.integers(min_value=0, max_value=1))
    @settings(max_examples=4, deadline=None)
    def test_reacting_flow_round_trip(self, seed, steps):
        self._assert_round_trip(_reacting(seed, steps), _reacting(seed + 1, 0))

    @given(seed=st.integers(min_value=0, max_value=4),
           steps=st.integers(min_value=0, max_value=1))
    @settings(max_examples=4, deadline=None)
    def test_pele_campaign_round_trip(self, seed, steps):
        self._assert_round_trip(_pele(seed, steps), _pele(seed + 1, 0))

    @staticmethod
    def _assert_round_trip(original, other):
        """Serialize *original*, restore into *other* (a differently
        initialized instance), and require byte-for-byte equality."""
        blob = encode_snapshot(original.snapshot())
        other.restore(decode_snapshot(blob))
        assert encode_snapshot(other.snapshot()) == blob

    def test_restore_rejects_wrong_kind(self):
        app = ExaskyCampaign(nparticles=16, seed=0)
        with pytest.raises(SnapshotError):
            app.restore(Snapshot("apps.pele.campaign", 1, {}))

    def test_restore_rejects_wrong_version(self):
        app = ExaskyCampaign(nparticles=16, seed=0)
        snap = app.snapshot()
        bad = Snapshot(snap.kind, snap.version + 1, snap.payload)
        with pytest.raises(SnapshotError):
            app.restore(bad)


def _stiff_batch_integrator():
    k = np.array([[5.0, 80.0], [300.0, 1.5], [40.0, 40.0]])  # (B=3, n=2)

    def rhs(t, y):
        return -k * y

    def jac(t, y):
        B, n = y.shape
        J = np.zeros((B, n, n))
        J[:, 0, 0] = -k[:, 0]
        J[:, 1, 1] = -k[:, 1]
        return J

    return BatchedBdfIntegrator(rhs, jac=jac, rtol=1e-7, atol=1e-12)


class TestMidIntegrationCheckpoint:
    """The Jacobian/LU-reuse caches survive a checkpoint bit-exactly."""

    @given(nrounds=st.integers(min_value=0, max_value=12),
           seed=st.integers(min_value=0, max_value=20))
    @settings(max_examples=20, deadline=None)
    def test_batched_bdf_state_round_trip(self, nrounds, seed):
        rng = np.random.default_rng(seed)
        y0 = rng.uniform(0.5, 2.0, (3, 2))
        integ = _stiff_batch_integrator()
        state = integ.start(y0, 0.0, 1.0)
        for _ in range(nrounds):
            if state.finished:
                break
            integ.step_round(state)
        blob = encode_snapshot(state.snapshot())
        fresh = _stiff_batch_integrator().start(y0 * 0.0 + 1.0, 0.0, 2.0)
        fresh.restore(decode_snapshot(blob))
        assert encode_snapshot(fresh.snapshot()) == blob

    def test_resume_after_restore_matches_uninterrupted(self):
        y0 = np.array([[1.0, 2.0], [0.5, 1.5], [2.0, 0.25]])
        integ = _stiff_batch_integrator()
        reference = integ.integrate(y0, 0.0, 1.0)

        interrupted = _stiff_batch_integrator()
        state = interrupted.start(y0, 0.0, 1.0)
        for _ in range(5):
            if not state.finished:
                interrupted.step_round(state)
        blob = encode_snapshot(state.snapshot())

        resumed = _stiff_batch_integrator()
        rstate = resumed.start(np.ones_like(y0), 0.0, 99.0)
        rstate.restore(decode_snapshot(blob))
        while not rstate.finished:
            resumed.step_round(rstate)
        res = rstate.result()
        np.testing.assert_array_equal(res.y, reference.y)
        np.testing.assert_array_equal(res.t, reference.t)
        assert res.stats.steps == reference.stats.steps
        assert res.stats.cells_refactored == reference.stats.cells_refactored


# -- fault injector -------------------------------------------------------------


class TestFaultInjector:
    def test_requires_explicit_generator(self):
        with pytest.raises(TypeError):
            FaultInjector(rng=1234, mtbf={FaultKind.RANK_FAILURE: 10.0})

    def test_schedule_is_a_pure_function_of_seed(self):
        def schedule(n):
            inj = FaultInjector(
                rng=np.random.default_rng(7),
                mtbf={FaultKind.RANK_FAILURE: 5.0,
                      FaultKind.LINK_DEGRADATION: 3.0},
            )
            return [inj.pop() for _ in range(n)]

        assert schedule(20) == schedule(20)

    def test_events_arrive_in_time_order(self):
        inj = FaultInjector(
            rng=np.random.default_rng(0),
            mtbf={FaultKind.RANK_FAILURE: 2.0, FaultKind.DEVICE_OOM: 3.0,
                  FaultKind.LINK_DEGRADATION: 1.0},
        )
        times = [inj.pop().time for _ in range(50)]
        assert times == sorted(times)

    def test_mean_gap_tracks_mtbf(self):
        mtbf = 4.0
        inj = FaultInjector(rng=np.random.default_rng(1),
                            mtbf={FaultKind.RANK_FAILURE: mtbf})
        times = [inj.pop().time for _ in range(2000)]
        gaps = np.diff([0.0] + times)
        assert np.mean(gaps) == pytest.approx(mtbf, rel=0.1)

    def test_rank_failure_fires_through_comm(self):
        comm = SimComm(4, SLINGSHOT_11)
        inj = FaultInjector(rng=np.random.default_rng(0),
                            mtbf={FaultKind.RANK_FAILURE: 1.0},
                            max_target=4)
        event = inj.pop()
        with pytest.raises(RankFailureFault):
            inj.fire(event, comm=comm)
        with pytest.raises(RankFailedError):
            comm.barrier()
        inj.clear(comm=comm)
        comm.barrier()  # everyone is back

    def test_device_oom_fires_through_device(self):
        device = Device(MI250X_GCD)
        inj = FaultInjector(rng=np.random.default_rng(0),
                            mtbf={FaultKind.DEVICE_OOM: 1.0})
        event = inj.pop()
        with pytest.raises(DeviceOomFault):
            inj.fire(event, device=device)
        inj.clear(device=device)
        alloc = device.malloc(1 << 20)  # heap usable again
        device.free(alloc)


# -- the runner -----------------------------------------------------------------


class CountingApp:
    """Deterministic toy app: a counter plus a rolling hash-like array."""

    snapshot_kind = "test.counting"
    snapshot_version = 1

    def __init__(self, step_cost=1.0):
        self.count = 0
        self.x = np.zeros(4)
        self.step_cost = float(step_cost)

    def step(self):
        self.count += 1
        self.x = np.cos(self.x + self.count)
        return self.step_cost

    def snapshot(self):
        return Snapshot(self.snapshot_kind, self.snapshot_version,
                        {"count": self.count, "x": self.x})

    def restore(self, snap):
        self.count = snap.payload["count"]
        self.x = snap.payload["x"].copy()


class TestResilientRunner:
    def test_clean_run_accounting(self):
        cost = CheckpointCostModel(latency=0.5, restart_cost=10.0)
        app = CountingApp()
        stats = ResilientRunner(app, checkpoint_interval=3,
                                cost_model=cost).run(10)
        assert app.count == 10
        assert stats.steps_completed == 10
        assert stats.steps_replayed == 0
        assert stats.recoveries == 0
        assert stats.useful_time == pytest.approx(10.0)
        # checkpoints at steps 0, 3, 6, 9, 10
        assert stats.checkpoints_written == 5
        assert stats.wall_clock == pytest.approx(
            stats.useful_time + stats.checkpoint_time)

    def test_accounting_identity_under_failures(self):
        inj = FaultInjector(rng=np.random.default_rng(5),
                            mtbf={FaultKind.RANK_FAILURE: 7.0})
        stats = ResilientRunner(
            CountingApp(), checkpoint_interval=4, injector=inj,
            cost_model=CheckpointCostModel(latency=0.1, restart_cost=1.0),
            max_retries=50, backoff_base=0.0,
        ).run(30)
        assert stats.recoveries >= 1
        assert stats.overhead_time == pytest.approx(
            stats.checkpoint_time + stats.lost_work_time
            + stats.recovery_time + stats.degraded_time)
        assert stats.inflation > 1.0

    def test_fault_injected_run_bit_identical_to_clean(self):
        def run(injector):
            app = CountingApp()
            ResilientRunner(
                app, checkpoint_interval=5, injector=injector,
                cost_model=CheckpointCostModel(latency=0.2, restart_cost=2.0),
                max_retries=50, backoff_base=0.0,
            ).run(40)
            return app

        clean = run(None)
        inj = FaultInjector(rng=np.random.default_rng(11),
                            mtbf={FaultKind.RANK_FAILURE: 15.0,
                                  FaultKind.DEVICE_OOM: 25.0})
        faulty = run(inj)
        assert snapshot_equal(clean.snapshot(), faulty.snapshot())

    def test_degradation_slows_but_never_rolls_back(self):
        inj = FaultInjector(rng=np.random.default_rng(3),
                            mtbf={FaultKind.LINK_DEGRADATION: 5.0})
        app = CountingApp()
        stats = ResilientRunner(app, checkpoint_interval=5, injector=inj,
                                cost_model=CheckpointCostModel()).run(30)
        assert stats.degradations_seen >= 1
        assert stats.degraded_time > 0.0
        assert stats.recoveries == 0
        assert stats.steps_replayed == 0
        assert app.count == 30

    def test_retry_exhaustion_raises(self):
        inj = FaultInjector(rng=np.random.default_rng(0),
                            mtbf={FaultKind.RANK_FAILURE: 1e-3})
        with pytest.raises(ResilienceError):
            ResilientRunner(CountingApp(), checkpoint_interval=2,
                            injector=inj, max_retries=3).run(10)

    def test_torn_checkpoint_falls_back_a_generation(self):
        from repro.resilience.runner import ResilienceStats

        app = CountingApp()
        runner = ResilientRunner(app, checkpoint_interval=1)
        stats = ResilienceStats()
        runner._write_checkpoint(0, stats)
        app.step()
        runner._write_checkpoint(1, stats)
        # torn write: the newest blob no longer matches its checksum
        runner._checkpoints[-1].blob = runner._checkpoints[-1].blob[:-1] + b"\x00"
        step, _ = runner._restore_latest_valid(stats)
        assert step == 0
        assert app.count == 0

    def test_snapshot_retention_is_bounded(self):
        app = CountingApp()
        runner = ResilientRunner(app, checkpoint_interval=1, keep_snapshots=2)
        runner.run(10)
        assert len(runner._checkpoints) == 2

    def test_campaign_time_lands_on_comm_clocks(self):
        comm = SimComm(4, SLINGSHOT_11)
        stats = ResilientRunner(CountingApp(), checkpoint_interval=5,
                                comm=comm).run(10)
        assert comm.elapsed == pytest.approx(stats.wall_clock)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            ResilientRunner(CountingApp(), checkpoint_interval=0)
        with pytest.raises(ValueError):
            ResilientRunner(CountingApp(), checkpoint_interval=1,
                            max_retries=0)
        with pytest.raises(ValueError):
            ResilientRunner(CountingApp(), checkpoint_interval=1).run(0)


# -- Young/Daly -----------------------------------------------------------------


class TestYoungDaly:
    def test_interval_formula(self):
        assert young_daly_interval(2.0, 10000.0) == pytest.approx(200.0)
        with pytest.raises(ValueError):
            young_daly_interval(0.0, 1.0)
        with pytest.raises(ValueError):
            young_daly_interval(1.0, -1.0)

    def test_system_mtbf_composes_over_nodes(self):
        from repro.hardware.catalog import FRONTIER
        assert system_mtbf(FRONTIER, node_mtbf=FRONTIER.nodes * 3600.0) == (
            pytest.approx(3600.0))

    def test_predicted_overhead_has_an_interior_minimum(self):
        delta, mtbf = 5.0, 3600.0
        w_opt = young_daly_interval(delta, mtbf)
        at_opt = predicted_overhead(w_opt, delta, mtbf)
        assert predicted_overhead(w_opt / 8, delta, mtbf) > at_opt
        assert predicted_overhead(w_opt * 8, delta, mtbf) > at_opt

    def test_daly_runtime_reduces_to_solve_time_without_failures(self):
        # MTBF -> infinity: expected runtime -> Ts * (W + delta)/W
        t = daly_expected_runtime(1000.0, 100.0, 1.0, 1e12)
        assert t == pytest.approx(1000.0 * 101.0 / 100.0, rel=1e-4)

    def test_machine_cost_model_uses_the_fabric(self):
        from repro.hardware.catalog import FRONTIER, SUMMIT
        nbytes = 16 << 30  # a PeleC-plotfile-scale node checkpoint
        frontier = machine_checkpoint_cost(FRONTIER, nbytes)
        summit = machine_checkpoint_cost(SUMMIT, nbytes)
        # Slingshot-11 per-node injection beats Summit's dual-rail EDR
        assert frontier.write_time(nbytes) < summit.write_time(nbytes)
        w = optimal_interval_for_machine(FRONTIER, nbytes)
        assert 60.0 < w < 24 * 3600.0  # minutes-to-hours, not ms or weeks

    def test_measured_optimum_matches_young_daly(self):
        """Acceptance: sweep checkpoint intervals under a seeded failure
        process; the measured overhead minimum must land within 2x of
        the predicted W*."""
        mtbf, delta_target = 500.0, 2.0
        cost = CheckpointCostModel(latency=delta_target, restart_cost=1.0,
                                   write_bandwidth=1e15, read_bandwidth=1e15)
        w_opt = young_daly_interval(delta_target, mtbf)  # ~44.7 s = steps
        grid = [11, 22, 45, 90, 180]
        nsteps, nseeds = 1200, 8

        mean_overhead = {}
        for interval in grid:
            fracs = []
            for trial in range(nseeds):
                inj = FaultInjector(rng=np.random.default_rng(1000 + trial),
                                    mtbf={FaultKind.RANK_FAILURE: mtbf})
                stats = ResilientRunner(
                    CountingApp(), checkpoint_interval=interval,
                    injector=inj, cost_model=cost, max_retries=100,
                    backoff_base=0.0,
                ).run(nsteps)
                fracs.append(stats.overhead_fraction)
            mean_overhead[interval] = float(np.mean(fracs))

        best = min(mean_overhead, key=mean_overhead.get)
        assert w_opt / 2 <= best <= w_opt * 2, (
            f"measured optimum {best} steps vs Young/Daly {w_opt:.1f}: "
            f"{mean_overhead}")


# -- the paper campaign through the runner --------------------------------------


class TestFigure2Resilient:
    def test_campaign_survives_and_replays_exactly(self):
        from repro.experiments.figure2 import run_figure2_resilient

        result = run_figure2_resilient(nsteps=6, checkpoint_interval=2,
                                       ncells=6, mtbf=5.0, seed=0)
        checks = result.checks()
        assert all(checks.values()), checks
        assert result.stats.steps_completed == 6
        assert "bit-identical" in result.render()


# -- determinism audit ----------------------------------------------------------


class TestDeterminismAudit:
    """No ambient randomness: every stochastic component is seeded."""

    #: construction APIs that are fine at any scope — they take a seed
    _ALLOWED = {"default_rng", "Generator", "SeedSequence", "PCG64",
                "Philox", "SFC64", "BitGenerator"}

    def _np_random_uses(self, tree):
        for node in ast.walk(tree):
            if (isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Attribute)
                    and node.value.attr == "random"
                    and isinstance(node.value.value, ast.Name)
                    and node.value.value.id in {"np", "numpy"}):
                yield node

    def test_no_unseeded_numpy_random_under_src(self):
        offenders = []
        for path in sorted(SRC.rglob("*.py")):
            tree = ast.parse(path.read_text(), filename=str(path))
            for node in self._np_random_uses(tree):
                if node.attr not in self._ALLOWED:
                    offenders.append(f"{path.relative_to(SRC)}:{node.lineno} "
                                     f"np.random.{node.attr}")
        assert not offenders, (
            "unseeded/global numpy randomness in src/:\n  "
            + "\n  ".join(offenders))

    def test_no_stdlib_random_module_under_src(self):
        offenders = []
        for path in sorted(SRC.rglob("*.py")):
            tree = ast.parse(path.read_text(), filename=str(path))
            for node in ast.walk(tree):
                if isinstance(node, (ast.Import, ast.ImportFrom)):
                    names = (
                        [a.name for a in node.names]
                        if isinstance(node, ast.Import)
                        else [node.module or ""]
                    )
                    if "random" in names:
                        offenders.append(
                            f"{path.relative_to(SRC)}:{node.lineno}")
        assert not offenders, (
            "stdlib `random` imported in src/ (unseedable ambient state):\n  "
            + "\n  ".join(offenders))

    #: modules whose span timestamps must be simulated/ordinal time only.
    #: (Benchmarks inject ``time.perf_counter`` *into* the tracer from
    #: outside; the instrumented substrates themselves never touch the
    #: wall clock, so two seeded runs export byte-identical traces.)
    _SIM_TIME_MODULES = (
        "observability", "mpisim", "resilience", "ode", "similarity",
        "gpu", "experiments", "service", "tuning",
    )

    def test_no_wall_clock_in_sim_time_span_modules(self):
        offenders = []
        for module in self._SIM_TIME_MODULES:
            for path in sorted((SRC / "repro" / module).rglob("*.py")):
                tree = ast.parse(path.read_text(), filename=str(path))
                for node in ast.walk(tree):
                    if isinstance(node, (ast.Import, ast.ImportFrom)):
                        names = (
                            [a.name for a in node.names]
                            if isinstance(node, ast.Import)
                            else [node.module or ""]
                        )
                        if any(n == "time" or n.startswith("time.")
                               for n in names):
                            offenders.append(
                                f"{path.relative_to(SRC)}:{node.lineno}")
        assert not offenders, (
            "wall-clock import in a sim-time span module (span timestamps "
            "must come from simulated clocks or the deterministic tick; "
            "benchmarks inject perf_counter from outside):\n  "
            + "\n  ".join(offenders))


# -- elastic redistribution planning --------------------------------------------


class TestElasticPlan:
    def test_plan_conserves_every_item(self):
        from repro.resilience import plan_shrink

        plan = plan_shrink(100, survivors=[0, 1, 2], old_nranks=4,
                           bytes_per_item=16.0)
        assert plan.new_nranks == 3
        # the dead rank's block comes back from the checkpoint
        assert plan.reloaded_items == 25
        assert plan.send_items.sum() == plan.migrated_items
        assert plan.migrated_items + plan.reloaded_items <= 100
        assert plan.migrated_bytes == plan.migrated_items * 16.0
        assert plan.reloaded_bytes == 25 * 16.0

    def test_no_failures_means_no_motion(self):
        from repro.resilience import plan_shrink

        plan = plan_shrink(64, survivors=range(8), old_nranks=8)
        assert plan.migrated_items == 0
        assert plan.reloaded_items == 0

    def test_plan_validation(self):
        from repro.mpisim.decomposition import DecompositionError
        from repro.resilience import plan_shrink

        with pytest.raises(DecompositionError):
            plan_shrink(10, survivors=[], old_nranks=4)
        with pytest.raises(DecompositionError):
            plan_shrink(10, survivors=[1, 1], old_nranks=4)
        with pytest.raises(DecompositionError):
            plan_shrink(10, survivors=[5], old_nranks=4)

    def test_redistribute_charges_the_shrunk_comm(self):
        from repro.resilience import plan_shrink, redistribute

        plan = plan_shrink(4096, survivors=[0, 1, 2], old_nranks=4,
                           bytes_per_item=1024.0)
        comm = SimComm(3, SLINGSHOT_11)
        dt = redistribute(comm, plan)
        assert dt > 0.0
        assert comm.elapsed == pytest.approx(dt)

    def test_redistribute_rejects_wrong_width(self):
        from repro.mpisim.decomposition import DecompositionError
        from repro.resilience import plan_shrink, redistribute

        plan = plan_shrink(10, survivors=[0, 1], old_nranks=4)
        with pytest.raises(DecompositionError):
            redistribute(SimComm(4, SLINGSHOT_11), plan)

    def test_shrink_and_redistribute_end_to_end(self):
        from repro.resilience import shrink_and_redistribute

        app = ExaskyCampaign(nparticles=512, seed=0)
        comm = SimComm(8, SLINGSHOT_11)
        comm.fail_rank(3)
        new_comm, plan, dt = shrink_and_redistribute(app, comm)
        assert new_comm.nranks == 7
        assert new_comm.parent_ranks == (0, 1, 2, 4, 5, 6, 7)
        assert plan is not None and plan.reloaded_items == 64
        assert dt >= 0.0

    def test_apps_advertise_their_domains(self):
        from repro.resilience import DomainSpec, domain_of

        assert domain_of(ExaskyCampaign(nparticles=64, seed=0)).nitems == 64
        pele = domain_of(PeleChemistryCampaign(ncells=4, seed=0))
        assert pele.nitems == 4 and pele.label == "cells"
        h = AmrHierarchy(Box(lo=(0, 0, 0), hi=(15, 15, 15)), max_grid_size=8)
        spec = domain_of(h)
        assert spec.label == "boxes" and spec.nitems == len(h.levels[0].boxes)
        assert domain_of(object()) is None  # not elastic: fine

        class Liar:
            def elastic_domain(self):
                return 42

        with pytest.raises(TypeError):
            domain_of(Liar())
        with pytest.raises(ValueError):
            DomainSpec(nitems=-1, bytes_per_item=8.0)


# -- recovery policies ----------------------------------------------------------


def _policy_campaign(policy, *, nsteps=24, mtbf=0.3, seed=7):
    from repro.hardware.interconnect import SLINGSHOT_11 as fabric

    app = ExaskyCampaign(nparticles=256, seed=3)
    comm = SimComm(8, fabric)
    inj = FaultInjector(rng=np.random.default_rng(seed),
                        mtbf={FaultKind.RANK_FAILURE: mtbf})
    runner = ResilientRunner(
        app, checkpoint_interval=4, injector=inj, comm=comm,
        cost_model=CheckpointCostModel(restart_cost=0.02),
        policy=policy, backoff_base=0.0, max_retries=50,
    )
    stats = runner.run(nsteps)
    return app, stats, runner


def _failure_free_reference(nsteps=24):
    app = ExaskyCampaign(nparticles=256, seed=3)
    for _ in range(nsteps):
        app.step()
    return app


class TestRecoveryPolicies:
    def test_make_policy_resolves_all_names(self):
        from repro.resilience import (
            RestartPolicy,
            ShrinkContinuePolicy,
            SpareSwapPolicy,
            make_policy,
        )

        assert isinstance(make_policy("restart"), RestartPolicy)
        assert isinstance(make_policy("shrink"), ShrinkContinuePolicy)
        assert isinstance(make_policy("shrink-continue"), ShrinkContinuePolicy)
        assert isinstance(make_policy("spare"), SpareSwapPolicy)
        assert isinstance(make_policy("spare-swap"), SpareSwapPolicy)
        with pytest.raises(ValueError):
            make_policy("pray")

    def test_make_policy_forwards_kwargs(self):
        from repro.resilience import make_policy

        policy = make_policy("spare", spares=4, activation_cost=0.005)
        assert policy.spares == 4
        assert policy.activation_cost == 0.005

        class _Pool:
            def try_acquire(self, purpose):
                return True

        pool = _Pool()
        shared = make_policy("spare_swap", pool=pool)  # underscores OK
        assert shared.pool is pool

    def test_make_policy_rejects_bad_kwargs(self):
        from repro.resilience import make_policy

        with pytest.raises(ValueError, match="bad arguments"):
            make_policy("restart", spares=4)
        with pytest.raises(ValueError, match="bad arguments"):
            make_policy("spare", warp_speed=9)

    def test_spare_pool_validation(self):
        from repro.resilience import SpareSwapPolicy

        with pytest.raises(ValueError):
            SpareSwapPolicy(spares=-1)
        with pytest.raises(ValueError):
            SpareSwapPolicy(activation_cost=-1.0)

    def test_restart_recovers_at_full_width(self):
        reference = _failure_free_reference()
        app, stats, runner = _policy_campaign("restart")
        assert stats.recoveries >= 1
        assert stats.shrinks == 0
        assert stats.ranks_final == stats.ranks_initial == 8
        assert stats.degraded_throughput_time == 0.0
        assert np.array_equal(app.pos, reference.pos)
        assert np.array_equal(app.vel, reference.vel)

    def test_shrink_continue_finishes_bit_identical_without_restart(self):
        """The tentpole acceptance: shrink-continue completes the campaign
        on the survivors and ends in exactly the failure-free bits."""
        reference = _failure_free_reference()
        app, stats, runner = _policy_campaign("shrink")
        assert stats.recoveries >= 1
        assert stats.shrinks >= 1
        assert runner.comm.nranks == 8 - stats.shrinks
        assert stats.ranks_final == runner.comm.nranks
        # running narrower is slower: the haircut is accounted, and the
        # factor matches initial/current width
        assert stats.degraded_throughput_time > 0.0
        assert runner.throughput_factor == pytest.approx(8 / runner.comm.nranks)
        assert stats.migrated_bytes >= 0.0
        # and the answer is still *exactly* the answer
        assert np.array_equal(app.pos, reference.pos)
        assert np.array_equal(app.vel, reference.vel)
        assert app.steps_done == reference.steps_done

    def test_spare_swap_consumes_pool_then_shrinks(self):
        from repro.resilience import SpareSwapPolicy

        reference = _failure_free_reference()
        policy = SpareSwapPolicy(spares=1, activation_cost=0.005)
        app, stats, runner = _policy_campaign(policy)
        assert stats.spares_used >= 1
        assert policy.spares_left == 0
        if stats.recoveries > stats.spares_used:
            # pool ran dry: later failures degraded to shrink-continue
            assert stats.shrinks == stats.recoveries - stats.spares_used
        assert np.array_equal(app.pos, reference.pos)
        assert np.array_equal(app.vel, reference.vel)

    def test_accounting_identity_includes_throughput_haircut(self):
        _, stats, _ = _policy_campaign("shrink")
        assert stats.overhead_time == pytest.approx(
            stats.checkpoint_time + stats.lost_work_time
            + stats.recovery_time + stats.degraded_time
            + stats.degraded_throughput_time)

    def test_shrink_exhaustion_raises_resilience_error(self):
        with pytest.raises(ResilienceError):
            _policy_campaign("shrink", nsteps=200, mtbf=0.05)


# -- fault-event conservation ----------------------------------------------------


class TestEventConservation:
    def test_pop_fire_requeue_identity(self):
        inj = FaultInjector(rng=np.random.default_rng(2),
                            mtbf={FaultKind.RANK_FAILURE: 1.0,
                                  FaultKind.LINK_DEGRADATION: 1.0})
        fired, deferred = [], set()
        for _ in range(10):
            e = inj.pop()
            if e.kind is FaultKind.LINK_DEGRADATION and id(e) not in deferred:
                inj.requeue(e)  # comes back on the next pop, counted once
                deferred.add(id(e))
            else:
                try:
                    inj.fire(e)
                except Exception:
                    pass
                fired.append(e)
        inj.assert_conserved()
        assert inj.events_drawn == len(fired) + inj.events_pending_requeued

    def test_requeued_event_comes_back_without_redraw(self):
        inj = FaultInjector(rng=np.random.default_rng(3),
                            mtbf={FaultKind.RANK_FAILURE: 1.0})
        first = inj.pop()
        drawn_after_first = inj.events_drawn
        inj.requeue(first)
        again = inj.pop()
        assert again == first
        assert inj.events_drawn == drawn_after_first  # counted once
        try:
            inj.fire(again)
        except Exception:
            pass
        inj.assert_conserved()

    def test_dropped_event_is_an_accounting_error(self):
        inj = FaultInjector(rng=np.random.default_rng(4),
                            mtbf={FaultKind.RANK_FAILURE: 1.0})
        inj.pop()  # ... and silently forget it
        with pytest.raises(AssertionError, match="conservation"):
            inj.assert_conserved()

    def test_runner_stats_satisfy_conservation(self):
        inj = FaultInjector(rng=np.random.default_rng(5),
                            mtbf={FaultKind.RANK_FAILURE: 7.0,
                                  FaultKind.LINK_DEGRADATION: 9.0})
        stats = ResilientRunner(
            CountingApp(), checkpoint_interval=4, injector=inj,
            cost_model=CheckpointCostModel(latency=0.1, restart_cost=1.0),
            max_retries=50, backoff_base=0.0,
        ).run(30)
        assert stats.events_drawn > 0
        stats.assert_event_conservation()  # also asserted inside run()
        assert stats.events_drawn == stats.events_fired + (
            stats.events_requeued_pending)


# -- silent data corruption through the runner -----------------------------------


class GuardedApp(CountingApp):
    """CountingApp carrying a full redundant copy: 100% SDC detection."""

    snapshot_kind = "test.guarded"

    def __init__(self, step_cost=1.0):
        super().__init__(step_cost)
        self.x_ref = self.x.copy()

    def step(self):
        dt = super().step()
        self.x_ref = self.x.copy()
        return dt

    def restore(self, snap):
        super().restore(snap)
        self.x_ref = self.x.copy()

    def sdc_targets(self):
        return [self.x]  # the reference copy is never struck

    def validate_state(self):
        from repro.resilience import SdcDetected

        if self.x.view(np.uint64).tobytes() != self.x_ref.view(
                np.uint64).tobytes():
            raise SdcDetected("counting state diverged from its shadow")


class TestSdcThroughRunner:
    def test_guarded_app_detects_every_flip_and_replays_exactly(self):
        clean = GuardedApp()
        for _ in range(30):
            clean.step()

        app = GuardedApp()
        inj = FaultInjector(rng=np.random.default_rng(9),
                            mtbf={FaultKind.SDC: 6.0})
        stats = ResilientRunner(
            app, checkpoint_interval=5, injector=inj,
            cost_model=CheckpointCostModel(latency=0.1, restart_cost=1.0),
            max_retries=50, backoff_base=0.0,
        ).run(30)
        assert stats.sdc_injected >= 1
        assert stats.sdc_detected == stats.sdc_injected  # coverage: 100%
        assert stats.failures_by_kind.get("sdc") == stats.sdc_detected
        assert stats.recoveries == stats.sdc_detected
        assert stats.steps_replayed >= 1
        # every flip was caught before a checkpoint could absorb it
        assert app.count == clean.count
        assert app.x.tobytes() == clean.x.tobytes()

    def test_unguarded_app_checkpoints_the_corruption(self):
        """Without guards the flip rides on: the campaign 'succeeds' with
        a wrong answer — the measured danger ABFT exists to close."""
        clean = CountingApp()
        for _ in range(30):
            clean.step()

        app = CountingApp()  # has no sdc_targets/validate_state hooks
        inj = FaultInjector(rng=np.random.default_rng(9),
                            mtbf={FaultKind.SDC: 6.0})
        stats = ResilientRunner(
            app, checkpoint_interval=5, injector=inj,
            cost_model=CheckpointCostModel(latency=0.1, restart_cost=1.0),
            max_retries=50, backoff_base=0.0,
        ).run(30)
        # no live arrays were advertised, so nothing was struck — but the
        # events still fired and the books still balance
        assert stats.sdc_detected == 0
        assert stats.recoveries == 0
        stats.assert_event_conservation()
        assert app.count == clean.count

    def test_exasky_guards_catch_exponent_flips(self):
        from repro.resilience import SdcDetected, flip_bit

        app = ExaskyCampaign(nparticles=64, seed=1)
        app.step()
        app.validate_state()  # clean state passes
        flip_bit(app.pos, 17, 62)  # exponent-field strike
        with pytest.raises(SdcDetected):
            app.validate_state()

    def test_pele_guards_catch_nonphysical_state(self):
        from repro.resilience import SdcDetected

        app = PeleChemistryCampaign(ncells=4, seed=0)
        app.validate_state()
        app.T[2] = 1e12  # far outside any flame
        with pytest.raises(SdcDetected):
            app.validate_state()
