"""Machine-scale resilience: fault matrix, R=P differential, Daly sweep.

The acceptance tests for lifting ScaledComm's all-live gate: every fault
kind lands on both exemplar and modelled targets, fault campaigns on an
R=P ScaledComm are bit-identical to SimComm under the same seed, and the
measured optimal checkpoint interval at 4,096+ nodes agrees with
Young/Daly within 2x.
"""

import numpy as np
import pytest

from repro.apps.exasky import ExaskyCampaign
from repro.gpu.device import Device
from repro.hardware.catalog import FRONTIER
from repro.hardware.gpu import MI250X_GCD
from repro.hardware.interconnect import SLINGSHOT_11
from repro.mpisim import (
    CommError,
    RankGroupPartitioner,
    ScaledComm,
    SimComm,
    all_live_partition,
)
from repro.mpisim.decomposition import DecompositionError
from repro.resilience import (
    CheckpointCostModel,
    DeviceOomFault,
    FaultEvent,
    FaultInjector,
    FaultKind,
    RankFailureFault,
    ResilientRunner,
    make_policy,
    plan_shrink,
    redistribute,
    scaled_fault_injector,
)
from repro.experiments.resilience_at_scale import (
    run_daly_sweep,
    run_overhead_curve,
)


@pytest.fixture
def scaled16():
    """16 machine ranks, 3 exemplars (reps 0, 1, 15)."""
    part = RankGroupPartitioner("endpoints").partition(16)
    return ScaledComm(16, SLINGSHOT_11, ranks_per_node=8,
                      device_buffers=True, partition=part)


def _injector(**mtbf):
    return FaultInjector(rng=np.random.default_rng(0),
                         mtbf={FaultKind(k): v for k, v in mtbf.items()})


# -- fault matrix: every kind x {exemplar, modelled} target -------------------


class TestScaledFaultMatrix:
    # rank 0 is an exemplar, rank 5 a modelled interior rank
    @pytest.mark.parametrize("target", [0, 5], ids=["exemplar", "modelled"])
    def test_rank_failure(self, scaled16, target):
        inj = _injector(rank_failure=1.0)
        event = FaultEvent(time=1.0, kind=FaultKind.RANK_FAILURE,
                           target=target)
        with pytest.raises(RankFailureFault):
            inj.fire(event, comm=scaled16)
        assert scaled16.failed_ranks() == [target]
        assert scaled16.machine_alive_count == 15
        inj.clear(comm=scaled16)
        assert scaled16.failed_ranks() == []
        assert scaled16.machine_alive_count == 16

    @pytest.mark.parametrize("target", [0, 5], ids=["exemplar", "modelled"])
    def test_device_oom(self, scaled16, target):
        inj = _injector(device_oom=1.0)
        device = Device(MI250X_GCD)
        event = FaultEvent(time=1.0, kind=FaultKind.DEVICE_OOM,
                           target=target)
        with pytest.raises(DeviceOomFault):
            inj.fire(event, comm=scaled16, device=device)
        with pytest.raises(Exception):
            device.malloc(64, tag="post-oom")
        inj.clear(comm=scaled16, device=device)
        device.free(device.malloc(64, tag="recovered"))

    @pytest.mark.parametrize("target", [0, 5], ids=["exemplar", "modelled"])
    def test_link_degradation_hits_cached_link(self, scaled16, target):
        baseline = scaled16.elapsed
        scaled16.allreduce([0.0] * 3, 1 << 20)
        baseline = scaled16.elapsed - baseline
        inj = _injector(link_degradation=1.0)
        event = FaultEvent(time=0.0, kind=FaultKind.LINK_DEGRADATION,
                           target=target, slowdown=4.0, duration=1.0e4)
        inj.fire(event, comm=scaled16)  # non-fatal: returns
        t0 = scaled16.elapsed
        scaled16.allreduce([0.0] * 3, 1 << 20)
        degraded = scaled16.elapsed - t0
        # the cached internode link must not serve pre-fault bandwidth
        assert degraded > 1.5 * baseline
        scaled16.advance_all(2.0e4)  # ride past the window
        t0 = scaled16.elapsed
        scaled16.allreduce([0.0] * 3, 1 << 20)
        assert scaled16.elapsed - t0 == pytest.approx(baseline)

    @pytest.mark.parametrize("target", [0, 5], ids=["exemplar", "modelled"])
    def test_sdc(self, scaled16, target):
        inj = _injector(sdc=1.0)
        arr = np.ones(64)
        event = FaultEvent(time=1.0, kind=FaultKind.SDC, target=target,
                           bit=52)
        inj.fire(event, comm=scaled16, arrays=[arr])
        assert len(inj.sdc_injected) == 1
        assert not np.array_equal(arr, np.ones(64))

    def test_out_of_range_machine_ranks_rejected(self, scaled16):
        with pytest.raises(CommError):
            scaled16.fail_rank(16)
        with pytest.raises(CommError):
            scaled16.restore_rank(16)
        scaled16.restore_rank(5)  # never failed: a no-op, like SimComm


# -- R=P differential: fault campaigns bit-identical to SimComm --------------


def _fault_campaign(comm, *, policy, seed=7, nsteps=24):
    if policy == "spare":  # default 15 s activation dwarfs this campaign
        policy = make_policy("spare", spares=8, activation_cost=0.01)
    app = ExaskyCampaign(nparticles=64, seed=3)
    injector = FaultInjector(
        rng=np.random.default_rng(seed),
        mtbf={FaultKind.RANK_FAILURE: 0.15,
              FaultKind.LINK_DEGRADATION: 0.2},
        max_target=comm.machine_ranks,
    )
    runner = ResilientRunner(
        app, checkpoint_interval=4, injector=injector,
        cost_model=CheckpointCostModel(restart_cost=0.02),
        comm=comm, policy=policy, backoff_base=0.0,
    )
    stats = runner.run(nsteps)
    return app, stats, runner.comm


class TestRankIdentityDifferential:
    @pytest.mark.parametrize("policy", ["restart", "shrink", "spare"])
    def test_bit_identical_to_simcomm(self, policy):
        sim = SimComm(8, SLINGSHOT_11, ranks_per_node=4,
                      device_buffers=True)
        scaled = ScaledComm(8, SLINGSHOT_11, ranks_per_node=4,
                            device_buffers=True,
                            partition=all_live_partition(8))
        app_a, stats_a, comm_a = _fault_campaign(sim, policy=policy)
        app_b, stats_b, comm_b = _fault_campaign(scaled, policy=policy)
        assert stats_a.recoveries > 0  # the campaign actually saw faults
        assert np.array_equal(app_a.pos, app_b.pos)
        assert np.array_equal(app_a.vel, app_b.vel)
        for name in ("steps_completed", "steps_replayed", "recoveries",
                     "shrinks", "spares_used", "ranks_final",
                     "wall_clock", "useful_time", "lost_work_time",
                     "recovery_time", "degraded_time", "migrated_bytes"):
            assert getattr(stats_a, name) == getattr(stats_b, name), name
        assert comm_a.machine_ranks == comm_b.machine_ranks
        assert comm_a.elapsed == comm_b.elapsed


# -- weighted-group shrink plans ---------------------------------------------


class TestWeightedShrinkPlans:
    def test_pair_of_identity_matches_dense(self):
        survivors = [r for r in range(16) if r != 5]
        dense = plan_shrink(1000, survivors, 16)
        folded = plan_shrink(1000, survivors, 16,
                             pair_of=np.arange(len(survivors)))
        assert folded.migrated_items == dense.migrated_items
        assert folded.reloaded_items == dense.reloaded_items
        assert np.array_equal(folded.send_items, dense.send_items)

    def test_folded_plan_redistributes_on_shrunk_scaledcomm(self, scaled16):
        scaled16.fail_rank(5)
        sub = scaled16.shrink()
        pair_of = sub.proxy_live_indices()
        plan = plan_shrink(4096, sub.parent_machine_ranks, 16,
                           bytes_per_item=64.0, pair_of=pair_of)
        assert plan.new_nranks == 15  # machine-exact
        assert plan.pair_ranks == sub.nranks  # exemplar-folded matrix
        assert plan.send_items.shape == (sub.nranks, sub.nranks)
        dt = redistribute(sub, plan)
        assert dt > 0.0

    def test_plan_comm_mismatch_rejected(self, scaled16):
        scaled16.fail_rank(5)
        sub = scaled16.shrink()
        dense = plan_shrink(4096, sub.parent_machine_ranks, 16)
        with pytest.raises(DecompositionError, match="proxy_live_indices"):
            redistribute(sub, dense)  # dense 15x15 matrix, 3-exemplar comm

    def test_pair_of_shape_validated(self):
        with pytest.raises(DecompositionError, match="pair_of"):
            plan_shrink(100, range(8), 16, pair_of=np.arange(3))


# -- machine-scale fault injector --------------------------------------------


class TestScaledFaultInjector:
    def test_targets_span_the_machine(self):
        import dataclasses
        paper = dataclasses.replace(FRONTIER, nodes=9074)
        inj = scaled_fault_injector(np.random.default_rng(0), paper)
        assert inj.max_target == 9074 * 8 == 72592
        targets = {inj.pop().target for _ in range(200)}
        assert max(targets) >= 8  # far beyond any exemplar count

    def test_mtbf_scales_with_node_count(self):
        import dataclasses
        small = dataclasses.replace(FRONTIER, nodes=1024)
        inj_small = scaled_fault_injector(np.random.default_rng(0), small)
        inj_full = scaled_fault_injector(np.random.default_rng(0), FRONTIER)
        ratio = (inj_small.mtbf[FaultKind.RANK_FAILURE]
                 / inj_full.mtbf[FaultKind.RANK_FAILURE])
        assert ratio == pytest.approx(FRONTIER.nodes / 1024)

    def test_time_compression_divides_mtbf(self):
        base = scaled_fault_injector(np.random.default_rng(0), FRONTIER)
        fast = scaled_fault_injector(np.random.default_rng(0), FRONTIER,
                                     time_compression=100.0)
        assert fast.mtbf[FaultKind.RANK_FAILURE] == pytest.approx(
            base.mtbf[FaultKind.RANK_FAILURE] / 100.0)
        with pytest.raises(ValueError, match="time_compression"):
            scaled_fault_injector(np.random.default_rng(0), FRONTIER,
                                  time_compression=0.0)


# -- the campaign service at paper-scale node counts -------------------------


class TestServiceAtScale:
    def test_campaign_comm_threshold(self):
        from repro.service.engine import SCALED_COMM_MIN_NODES, _campaign_comm

        small = _campaign_comm(SCALED_COMM_MIN_NODES - 1, SLINGSHOT_11)
        big = _campaign_comm(4096, SLINGSHOT_11)
        assert not isinstance(small, ScaledComm)
        assert isinstance(big, ScaledComm)
        assert big.machine_ranks == 4096
        assert big.nranks < 64  # exemplars only

    def test_paper_scale_faulted_job_bit_identical(self):
        from repro.service.engine import execute_campaign
        from repro.service.job import Job, JobTemplate

        template = JobTemplate(
            name="hacc-4096", nodes=4096, nsteps=24, est_step_cost=0.01,
            make_app=lambda seed: ExaskyCampaign(nparticles=64, seed=seed))

        def fresh():
            return Job(job_id=1, tenant="cosmo", template=template,
                       app_seed=5, submit_time=0.0)

        faulted, checksum = execute_campaign(
            fresh(), FRONTIER, seed=11,
            fault_mtbf={FaultKind.RANK_FAILURE: 0.05},
            policy="shrink", backoff_base=0.0, max_retries=32)
        assert faulted.recoveries > 0
        assert faulted.ranks_initial == 4096
        assert faulted.ranks_final < 4096  # shrunk mid-campaign, kept going
        clean, clean_checksum = execute_campaign(fresh(), FRONTIER, seed=11)
        assert clean.recoveries == 0
        assert checksum == clean_checksum  # same bits despite the failures


# -- Daly validation at machine scale ----------------------------------------


class TestDalyAtScale:
    def test_measured_optimum_within_2x(self):
        result = run_daly_sweep(nodes=4096, seeds=(0, 1), nsteps=128)
        assert result.machine_ranks == 4096 * 8
        assert all(result.checks().values()), result.checks()
        assert result.daly_agreement_factor <= 2.0 + 1e-9

    def test_overhead_grows_with_node_count(self):
        result = run_overhead_curve(seeds=(0, 1), nsteps=96)
        assert all(result.checks().values()), result.checks()
        assert result.points[-1].machine_ranks == 9074 * 8

    def test_sweep_is_deterministic(self):
        a = run_daly_sweep(nodes=4096, seeds=(0,), nsteps=64)
        b = run_daly_sweep(nodes=4096, seeds=(0,), nsteps=64)
        assert a == b
