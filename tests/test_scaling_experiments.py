"""Tests for the full-machine scaling experiments (repro.experiments.scaling)."""

import numpy as np
import pytest

from repro.experiments.scaling import (
    DEFAULT_NODE_COUNTS,
    QUICK_STRONG_NODE_COUNTS,
    QUICK_WEAK_NODE_COUNTS,
    WORKLOADS,
    CometWeakScaling,
    GamessStrongScaling,
    PeleWeakScaling,
    check_validation,
    comet_full_machine_exaflops,
    gamess_full_machine_efficiency,
    pele_full_machine_weak_scaling,
    render_validation,
    strong_scaling_curve,
    validate_exemplar_vs_full,
    weak_scaling_curve,
)
from repro.observability.tracer import Tracer


class TestWorkloadPlumbing:
    def test_registry(self):
        assert set(WORKLOADS) == {"comet", "pele", "gamess"}

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown mode"):
            CometWeakScaling().build_comm(1, mode="warp")

    def test_comet_partition_is_tiny(self):
        part = CometWeakScaling().build_partition(9074)
        assert part.nranks == 72592
        assert part.nlive == 6

    def test_pele_partition_bounded_by_27(self):
        part = PeleWeakScaling().build_partition(4096)
        assert part.nranks == 32768
        assert part.nlive <= 27

    def test_gamess_partition_two_classes(self):
        part = GamessStrongScaling().build_partition(2048)
        assert part.nlive == 2

    def test_gamess_task_count(self):
        w = GamessStrongScaling()
        assert w.n_tasks == 437_580  # 935 monomers + 436,645 dimer pairs


class TestDifferential:
    """Exemplar-vs-full at live-feasible sizes: the tentpole's contract."""

    @pytest.mark.parametrize("app", sorted(WORKLOADS))
    def test_bit_identity_and_tolerance(self, app):
        points = validate_exemplar_vs_full(WORKLOADS[app](),
                                           node_counts=(1, 2, 8), steps=2)
        check_validation(points)
        assert all(p.bit_identical for p in points)
        assert all(p.rel_error <= 1e-9 for p in points)

    def test_check_raises_on_divergence(self):
        points = validate_exemplar_vs_full(GamessStrongScaling(),
                                           node_counts=(1,), steps=1)
        bad = type(points[0])(**{**points[0].__dict__,
                                 "scaled_time": points[0].live_time * 2})
        with pytest.raises(ValueError, match="exemplar mode off"):
            check_validation([bad])

    def test_render(self):
        points = validate_exemplar_vs_full(CometWeakScaling(),
                                           node_counts=(1,), steps=1)
        text = render_validation(points)
        assert "Bit-id" in text and "comet" in text


class TestCurves:
    def test_weak_curve_reaches_machine_size(self):
        curve = weak_scaling_curve(CometWeakScaling(),
                                   node_counts=QUICK_WEAK_NODE_COUNTS)
        assert curve.points[-1].nodes == 9074
        assert curve.points[-1].ranks == 72592
        assert curve.points[-1].live_ranks == 6
        # §3.6: near-perfect weak scaling, 6.71 EF headline
        assert curve.efficiency_at(9074) >= 0.99
        assert curve.points[-1].metric == pytest.approx(6.71, rel=0.25)

    def test_default_sweep_is_ten_points(self):
        assert len(DEFAULT_NODE_COUNTS) == 10
        assert DEFAULT_NODE_COUNTS[0] == 8
        assert DEFAULT_NODE_COUNTS[-1] == 9074

    def test_pele_weak_curve(self):
        curve = weak_scaling_curve(PeleWeakScaling(),
                                   node_counts=(1, 64, 4096))
        assert curve.efficiency_at(4096) >= 0.8  # §3.8
        assert curve.points[-1].live_ranks <= 27

    def test_gamess_strong_curve(self):
        curve = strong_scaling_curve(GamessStrongScaling(),
                                     node_counts=QUICK_STRONG_NODE_COUNTS)
        assert curve.points[-1].nodes == 2048
        assert curve.efficiency_at(2048) >= 0.95  # §3.1 near-ideal
        # strong scaling: step time must actually shrink with nodes
        times = [p.step_time for p in curve.points]
        assert times == sorted(times, reverse=True)

    def test_efficiency_at_missing_point(self):
        curve = weak_scaling_curve(CometWeakScaling(), node_counts=(1, 2))
        with pytest.raises(KeyError):
            curve.efficiency_at(9074)

    def test_render(self):
        curve = weak_scaling_curve(CometWeakScaling(), node_counts=(1, 2))
        text = curve.render()
        assert "Efficiency" in text and "EF" in text

    def test_traces_stay_group_sized(self):
        """A full-machine sweep's trace is O(R), not O(P)."""
        tracer = Tracer()
        w = PeleWeakScaling()
        comm = w.build_comm(4096, mode="scaled", tracer=tracer)
        w.run(comm, 4096, steps=2)
        assert comm.machine_ranks == 32768
        assert len(tracer.spans) < 50


class TestFullMachineClaims:
    def test_comet_exaflops(self):
        assert comet_full_machine_exaflops() == pytest.approx(6.71, rel=0.25)

    def test_pele_weak_scaling(self):
        assert pele_full_machine_weak_scaling() >= 0.8

    def test_gamess_efficiency(self):
        assert gamess_full_machine_efficiency() >= 0.95

    def test_claims_registered_in_intext(self):
        from repro.experiments.intext import ALL_CLAIMS

        scaled = [c for c in ALL_CLAIMS if "ScaledComm" in c.description]
        assert len(scaled) == 3
        for claim in scaled:
            assert claim.evaluate().ok
