"""Tests for the LSMS scattering and NuCCOR coupled-cluster substrates."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cc import (
    BlockMatrix,
    HostPlugin,
    PairingModel,
    PluginFactory,
    power_iteration_ground_state,
    random_channel_basis,
)
from repro.cc.tensor import ChannelBasis
from repro.scattering import (
    assemble_kkr_matrix,
    build_liz,
    make_t_matrices,
    structure_constant_block,
    tau_central_block,
)


class TestScattering:
    def test_liz_grows_with_radius(self):
        small = build_liz(1.0, 1.1)
        large = build_liz(1.0, 2.1)
        assert small.n_atoms < large.n_atoms
        assert small.positions[0] @ small.positions[0] == 0.0  # central atom first

    def test_liz_sorted_by_distance(self):
        liz = build_liz(1.0, 2.5)
        d = np.linalg.norm(liz.positions, axis=1)
        assert np.all(np.diff(d) >= -1e-12)

    def test_structure_constant_reciprocity(self):
        r = np.array([0.7, -1.2, 0.4])
        g1 = structure_constant_block(r, 12)
        g2 = structure_constant_block(-r, 12)
        np.testing.assert_allclose(g1, g2.T, atol=1e-12)

    def test_structure_constant_decays(self):
        g_near = structure_constant_block(np.array([1.0, 0, 0]), 8)
        g_far = structure_constant_block(np.array([4.0, 0, 0]), 8)
        assert np.abs(g_far).max() < np.abs(g_near).max()

    def test_zero_vector_rejected(self):
        with pytest.raises(ValueError):
            structure_constant_block(np.zeros(3), 8)

    def test_kkr_matrix_shape_and_diagonal(self):
        liz = build_liz(1.0, 1.2, block_size=4)
        t = make_t_matrices(liz)
        m = assemble_kkr_matrix(liz, t)
        assert m.shape == (liz.matrix_size, liz.matrix_size)
        b = liz.block_size
        np.testing.assert_allclose(m[:b, :b], np.eye(b), atol=1e-12)

    def test_solver_paths_agree(self):
        """zblock_lu and rocSOLVER-style LU give the same tau block (§3.2)."""
        liz = build_liz(1.0, 1.8, block_size=8)
        t = make_t_matrices(liz, seed=3)
        tau_lu = tau_central_block(liz, t, method="getrf")
        tau_blk = tau_central_block(liz, t, method="zblock_lu")
        np.testing.assert_allclose(tau_lu, tau_blk, atol=1e-9)

    def test_unknown_method_rejected(self):
        liz = build_liz(1.0, 1.2, block_size=4)
        with pytest.raises(ValueError):
            tau_central_block(liz, make_t_matrices(liz), method="cholesky")

    def test_t_matrix_shape_validated(self):
        liz = build_liz(1.0, 1.2, block_size=4)
        with pytest.raises(ValueError):
            assemble_kkr_matrix(liz, np.zeros((2, 4, 4), dtype=complex))

    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=2, max_value=8))
    def test_property_solver_agreement(self, block_size):
        liz = build_liz(1.0, 1.2, block_size=block_size)
        t = make_t_matrices(liz, seed=block_size)
        np.testing.assert_allclose(
            tau_central_block(liz, t, method="getrf"),
            tau_central_block(liz, t, method="zblock_lu"),
            atol=1e-9,
        )


class TestPairingModel:
    def test_hamiltonian_symmetric(self):
        h = PairingModel(n_levels=5, n_pairs=2, g=0.6).hamiltonian()
        np.testing.assert_allclose(h, h.T)

    def test_zero_pairing_gives_reference_energy(self):
        m = PairingModel(n_levels=5, n_pairs=2, g=0.0)
        assert m.exact_ground_state() == pytest.approx(m.reference_energy())

    def test_correlation_energy_negative_and_grows_with_g(self):
        e1 = PairingModel(n_levels=6, n_pairs=3, g=0.2).correlation_energy()
        e2 = PairingModel(n_levels=6, n_pairs=3, g=0.8).correlation_energy()
        assert e1 < 0 and e2 < e1

    def test_power_iteration_matches_exact(self):
        m = PairingModel(n_levels=6, n_pairs=3, g=0.5)
        h = m.hamiltonian()
        e, v, _ = power_iteration_ground_state(h, tol=1e-12)
        assert e == pytest.approx(m.exact_ground_state(), abs=1e-6)
        np.testing.assert_allclose(h @ v, e * v, atol=1e-4)

    def test_power_iteration_through_plugin(self):
        """The NuCCOR pattern: domain solver + pluggable backend."""
        m = PairingModel(n_levels=5, n_pairs=2, g=0.4)
        h = m.hamiltonian()
        plugin = PluginFactory().create("rocblas")
        e, _, _ = power_iteration_ground_state(h, matvec=lambda v: plugin.matvec(h, v))
        assert e == pytest.approx(m.exact_ground_state(), abs=1e-6)
        assert plugin.elapsed > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            PairingModel(n_levels=3, n_pairs=4)


class TestBlockTensors:
    def test_contraction_matches_dense(self):
        rb = random_channel_basis(3, 4)
        a = BlockMatrix(rb, rb).set_random(0)
        b = BlockMatrix(rb, rb).set_random(1)
        np.testing.assert_allclose(
            a.contract(b).to_dense(), a.to_dense() @ b.to_dense(), atol=1e-12
        )

    def test_sparsity_savings(self):
        rb = random_channel_basis(8, 4)
        a = BlockMatrix(rb, rb)
        assert a.sparsity_savings == pytest.approx(8.0)

    def test_from_dense_checks_conservation(self):
        rb = random_channel_basis(2, 2)
        bad = np.ones((4, 4))  # couples different channels
        with pytest.raises(ValueError, match="violates channel conservation"):
            BlockMatrix.from_dense(bad, rb, rb)

    def test_from_dense_roundtrip(self):
        rb = random_channel_basis(3, 3)
        a = BlockMatrix(rb, rb).set_random(7)
        dense = a.to_dense()
        b = BlockMatrix.from_dense(dense, rb, rb)
        np.testing.assert_array_equal(b.to_dense(), dense)

    def test_mismatched_contraction_rejected(self):
        a = BlockMatrix(random_channel_basis(2, 3), random_channel_basis(2, 3))
        b = BlockMatrix(random_channel_basis(3, 2), random_channel_basis(3, 2))
        with pytest.raises(ValueError):
            a.contract(b)

    def test_unsorted_labels_rejected(self):
        with pytest.raises(ValueError):
            ChannelBasis(labels=(1, 0, 1))

    def test_norm(self):
        rb = random_channel_basis(2, 2)
        a = BlockMatrix(rb, rb).set_random(0)
        assert a.norm() == pytest.approx(np.linalg.norm(a.to_dense()))


class TestPluginFactory:
    def test_builtin_plugins(self):
        f = PluginFactory()
        assert set(f.available) >= {"host", "cublas", "rocblas"}

    def test_all_plugins_numerically_identical(self):
        f = PluginFactory()
        rng = np.random.default_rng(0)
        a, b = rng.normal(size=(16, 16)), rng.normal(size=(16, 16))
        ref = f.create("host").gemm(a, b)
        for name in ("cublas", "rocblas"):
            np.testing.assert_allclose(f.create(name).gemm(a, b), ref)

    def test_register_new_architecture(self):
        """'Adding a new hardware architecture is just adding a plugin.'"""

        class IntelPlugin(HostPlugin):
            name = "oneapi"

        f = PluginFactory()
        f.register("oneapi", IntelPlugin)
        assert isinstance(f.create("oneapi"), IntelPlugin)

    def test_register_validates_interface(self):
        f = PluginFactory()
        with pytest.raises(TypeError):
            f.register("bogus", dict)

    def test_unknown_plugin(self):
        with pytest.raises(KeyError):
            PluginFactory().create("tpu")
