"""Tests for repro.service: jobs, pools, fair-share, EASY backfill,
the event engine, and the standalone-vs-service bit-identity contract."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware.catalog import FRONTIER, SUMMIT
from repro.observability.metrics import MetricsError, MetricsRegistry
from repro.observability.tracer import Tracer
from repro.resilience.faults import FaultKind
from repro.resilience.runner import CheckpointCostModel
from repro.service import (
    CampaignService,
    EasyBackfillScheduler,
    FairShareError,
    FairShareLedger,
    Job,
    JobError,
    JobState,
    JobTemplate,
    OpenLoopArrivals,
    PoolError,
    SparePool,
    build_pool,
    checkpoint_interval_steps,
    combined_fatal_mtbf,
    compute_slo,
    execute_campaign,
    failure_free_checksum,
    walltime_estimate,
)
from repro.service.scheduler import RunningView

MTBF = {
    FaultKind.RANK_FAILURE: 1.5,
    FaultKind.DEVICE_OOM: 6.0,
    FaultKind.LINK_DEGRADATION: 3.0,
}
COST = CheckpointCostModel(restart_cost=0.05)


def _dummy_template(name="t", nodes=1, nsteps=2, est=1.0, priority=0):
    from repro.apps.exasky import ExaskyCampaign

    return JobTemplate(name, nodes=nodes, nsteps=nsteps, est_step_cost=est,
                       make_app=lambda seed: ExaskyCampaign(nparticles=16,
                                                            seed=seed),
                       priority=priority)


def _job(job_id, *, nodes=1, est=1.0, submit=0.0, priority=0, tenant="t"):
    job = Job(job_id=job_id, tenant=tenant,
              template=_dummy_template(nodes=nodes, priority=priority),
              app_seed=0, submit_time=submit)
    job.walltime_estimate = est
    return job


# ---------------------------------------------------------------------------
# job model
# ---------------------------------------------------------------------------


class TestJobModel:
    def test_template_validation(self):
        with pytest.raises(JobError):
            _dummy_template(nodes=0)
        with pytest.raises(JobError):
            _dummy_template(nsteps=0)
        with pytest.raises(JobError):
            _dummy_template(est=0.0)

    def test_job_inherits_template_priority(self):
        assert _job(0).priority == 0
        job = Job(job_id=1, tenant="a",
                  template=_dummy_template(priority=3), app_seed=0,
                  submit_time=0.0)
        assert job.priority == 3
        override = Job(job_id=2, tenant="a",
                       template=_dummy_template(priority=3), app_seed=0,
                       submit_time=0.0, priority=7)
        assert override.priority == 7

    def test_combined_fatal_mtbf(self):
        assert combined_fatal_mtbf(None) == math.inf
        assert combined_fatal_mtbf({}) == math.inf
        # only fatal kinds contribute; rates add harmonically
        m = combined_fatal_mtbf({FaultKind.RANK_FAILURE: 10.0,
                                 FaultKind.DEVICE_OOM: 10.0,
                                 FaultKind.LINK_DEGRADATION: 1e-3})
        assert m == pytest.approx(5.0)
        with pytest.raises(JobError):
            combined_fatal_mtbf({FaultKind.RANK_FAILURE: -1.0})

    def test_checkpoint_interval_clamped(self):
        # infinite MTBF: checkpoint only at the end
        assert checkpoint_interval_steps(1.0, 0.1, math.inf, nsteps=7) == 7
        # brutal MTBF: at least every step
        assert checkpoint_interval_steps(1.0, 0.1, 1e-6, nsteps=7) == 1
        k = checkpoint_interval_steps(1.0, 0.5, 100.0, nsteps=50)
        assert 1 <= k <= 50

    def test_walltime_estimate_is_inflated_work(self):
        base = walltime_estimate(10, 1.0, 0.5, math.inf)
        assert base == pytest.approx(15.0)  # work x default 1.5 safety
        faulty = walltime_estimate(10, 1.0, 0.5, 20.0)
        assert faulty > base
        with pytest.raises(JobError):
            walltime_estimate(10, 1.0, 0.5, 20.0, safety=0.9)


# ---------------------------------------------------------------------------
# pools
# ---------------------------------------------------------------------------


class TestPools:
    def test_build_pool_by_name_and_bounds(self):
        pool = build_pool("summit", nodes=32, spares=2)
        assert pool.machine is SUMMIT
        assert pool.free_nodes == 32 and pool.spares.total == 2
        with pytest.raises(PoolError):
            build_pool("frontier", nodes=FRONTIER.nodes, spares=1)

    def test_allocation_arithmetic(self):
        pool = build_pool("frontier", nodes=4)
        pool.allocate(3)
        assert pool.busy_nodes == 3
        with pytest.raises(PoolError):
            pool.allocate(2)
        pool.release(3)
        with pytest.raises(PoolError):
            pool.release(1)

    def test_spare_pool_audit_log(self):
        sp = SparePool(1)
        assert sp.try_acquire("recovery")
        assert not sp.try_acquire("scheduler")  # denied, logged
        sp.release(1, "recovery-return")
        assert sp.denials == 1
        assert sp.audit() == (
            (0.0, "recovery", "acquire", 0),
            (0.0, "scheduler", "deny", 0),
            (0.0, "recovery-return", "release", 1),
        )
        with pytest.raises(PoolError):
            sp.release(1)


# ---------------------------------------------------------------------------
# fair-share
# ---------------------------------------------------------------------------


class TestFairShare:
    def test_usage_decays_with_half_life(self):
        fs = FairShareLedger(half_life=100.0)
        fs.charge("a", 80.0, now=0.0)
        assert fs.usage("a", 100.0) == pytest.approx(40.0)
        assert fs.usage("a", 200.0) == pytest.approx(20.0)
        assert fs.usage("b", 50.0) == 0.0

    def test_heavy_usage_lowers_priority(self):
        fs = FairShareLedger()
        hog, newcomer = _job(0, tenant="hog"), _job(1, tenant="new")
        fs.charge("hog", 500.0, now=0.0)
        assert (fs.effective_priority(hog, 0.0)
                < fs.effective_priority(newcomer, 0.0))

    def test_config_validation(self):
        with pytest.raises(FairShareError):
            FairShareLedger(half_life=0.0)
        with pytest.raises(FairShareError):
            FairShareLedger(age_weight=0.0)  # aging is the guarantee

    @given(
        base_old=st.integers(min_value=0, max_value=5),
        base_new=st.integers(min_value=0, max_value=5),
        usage_new=st.floats(min_value=0.0, max_value=1e6),
        extra_wait=st.floats(min_value=1e-3, max_value=1e4),
    )
    @settings(max_examples=80, deadline=None)
    def test_no_starvation_bound(self, base_old, base_new, usage_new,
                                 extra_wait):
        """A job older than starvation_bound(span) outranks ANY fresh
        competitor, whatever the competitor's base priority or the
        usage history of either tenant."""
        fs = FairShareLedger()
        now = fs.starvation_bound(5.0) + extra_wait
        old = _job(0, submit=0.0, priority=base_old, tenant="old")
        fresh = _job(1, submit=now, priority=base_new, tenant="fresh")
        fs.charge("fresh", usage_new, now=now)
        assert fs.order_key(old, now) < fs.order_key(fresh, now)


# ---------------------------------------------------------------------------
# EASY backfill invariants (hypothesis)
# ---------------------------------------------------------------------------


@st.composite
def scheduler_states(draw):
    capacity = draw(st.integers(min_value=2, max_value=12))
    free = draw(st.integers(min_value=0, max_value=capacity))
    running, held = [], capacity - free
    while held > 0:
        n = draw(st.integers(min_value=1, max_value=held))
        running.append(RunningView(n, draw(
            st.floats(min_value=0.1, max_value=50.0))))
        held -= n
    njobs = draw(st.integers(min_value=1, max_value=8))
    queue = [
        _job(
            k,
            nodes=draw(st.integers(min_value=1, max_value=capacity)),
            est=draw(st.floats(min_value=0.1, max_value=30.0)),
            submit=draw(st.floats(min_value=0.0, max_value=10.0)),
            priority=draw(st.integers(min_value=0, max_value=3)),
            tenant=draw(st.sampled_from(["a", "b", "c"])),
        )
        for k in range(njobs)
    ]
    return capacity, free, running, queue


class TestEasyBackfill:
    @given(scheduler_states())
    @settings(max_examples=120, deadline=None)
    def test_backfill_never_delays_head_reservation(self, state):
        """The EASY guarantee: with estimates treated as exact, the
        blocked head still has enough free nodes at its reserved start
        time after every backfill the plan admits."""
        capacity, free, running, queue = state
        sched = EasyBackfillScheduler()
        now = 10.0
        plan = sched.plan(queue, free, running, now)

        started = {s.job.job_id for s in plan.starts}
        heads = [s for s in plan.starts if s.kind == "head"]
        free_after = free - sum(s.job.nodes for s in plan.starts)
        assert free_after >= 0  # never oversubscribes the pool

        if plan.reservation is None:
            assert started == {j.job_id for j in queue}
            return
        t_res = plan.reservation.start_at
        order = sorted(queue, key=lambda j: sched.fairshare.order_key(j, now))
        head = next(j for j in order if j.job_id not in started)
        assert plan.reservation.job_id == head.job_id

        avail = free_after
        avail += sum(v.nodes for v in running if v.est_end <= t_res)
        avail += sum(s.job.nodes for s in heads
                     if now + s.job.walltime_estimate <= t_res)
        avail += sum(s.job.nodes for s in plan.starts
                     if s.kind == "backfill"
                     and now + s.job.walltime_estimate <= t_res)
        assert avail >= head.nodes

    @given(scheduler_states())
    @settings(max_examples=60, deadline=None)
    def test_plan_is_pure_and_deterministic(self, state):
        capacity, free, running, queue = state
        sched = EasyBackfillScheduler()
        p1 = sched.plan(queue, free, running, 5.0)
        p2 = sched.plan(list(queue), free, running, 5.0)
        assert ([(s.job.job_id, s.kind) for s in p1.starts]
                == [(s.job.job_id, s.kind) for s in p2.starts])
        assert p1.reservation == p2.reservation

    def test_oversized_job_raises_at_plan_time(self):
        sched = EasyBackfillScheduler()
        with pytest.raises(ValueError):
            sched.plan([_job(0, nodes=8)], 2, [RunningView(2, 5.0)], 0.0)

    def test_spare_borrow_only_after_threshold(self):
        sched = EasyBackfillScheduler(borrow_after=10.0)
        job = _job(0, nodes=4, submit=0.0)
        early = sched.plan([job], 2, [RunningView(2, 99.0)], 5.0,
                           spare_available=4)
        assert not early.starts
        late = sched.plan([job], 2, [RunningView(2, 99.0)], 15.0,
                          spare_available=4)
        assert [s.kind for s in late.starts] == ["spare-borrow"]
        assert late.starts[0].borrowed_spares == 2


# ---------------------------------------------------------------------------
# arrivals
# ---------------------------------------------------------------------------


class TestArrivals:
    def test_seeded_arrivals_reproduce(self):
        def draw():
            arr = OpenLoopArrivals(rate=2.0, tenants={"a": 2, "b": 1},
                                   seed=11)
            return [(j.job_id, j.tenant, j.template.name, j.app_seed,
                     j.submit_time) for j in arr.draw(50)]

        assert draw() == draw()

    def test_arrival_validation(self):
        with pytest.raises(JobError):
            OpenLoopArrivals(rate=0.0, tenants={"a": 1})
        with pytest.raises(JobError):
            OpenLoopArrivals(rate=1.0, tenants={})
        with pytest.raises(JobError):
            OpenLoopArrivals(rate=1.0, tenants={"a": -1.0})

    def test_offered_load_scales_with_rate(self):
        a = OpenLoopArrivals(rate=1.0, tenants={"a": 1}, seed=0)
        b = OpenLoopArrivals(rate=3.0, tenants={"a": 1}, seed=0)
        assert b.offered_load() == pytest.approx(3 * a.offered_load())


# ---------------------------------------------------------------------------
# the engine
# ---------------------------------------------------------------------------


def _service(pool, **kw):
    kw.setdefault("seed", 7)
    kw.setdefault("fault_mtbf", MTBF)
    kw.setdefault("cost_model", COST)
    return CampaignService(pool, **kw)


def _workload(njobs=60, *, rate=40.0, seed=42):
    arr = OpenLoopArrivals(rate=rate,
                           tenants={"astro": 2, "chem": 1, "climate": 1},
                           seed=seed)
    return arr.draw(njobs)


class TestEngine:
    def test_every_job_reaches_a_terminal_state(self):
        pool = build_pool("frontier", nodes=16, spares=2)
        res = _service(pool).run(_workload(60))
        assert all(j.state in (JobState.COMPLETED, JobState.FAILED)
                   for j in res.jobs)
        assert len(res.completed) + len(res.failed) == 60
        # the machine is fully drained afterwards
        assert pool.free_nodes == pool.nodes
        assert pool.spares.available == pool.spares.total

    def test_faults_actually_fire(self):
        res = _service(build_pool("frontier", nodes=16, spares=2)).run(
            _workload(120))
        assert sum(j.stats.recoveries for j in res.completed if j.stats) > 0

    def test_campaign_history_is_deterministic(self):
        def world():
            pool = build_pool("frontier", nodes=16, spares=2)
            svc = _service(
                pool, scheduler=EasyBackfillScheduler(borrow_after=1.0))
            res = svc.run(_workload(80))
            ledger = tuple(
                (j.job_id, j.state.value, j.attempt, j.start_time,
                 j.end_time, j.start_kind, j.result_checksum)
                for j in res.jobs)
            return pool.spares.audit(), ledger, res.slo

        audit1, ledger1, slo1 = world()
        audit2, ledger2, slo2 = world()
        assert audit1 == audit2
        assert ledger1 == ledger2
        assert slo1 == slo2

    def test_recovery_and_scheduler_contend_for_spares(self):
        """Both consumers show up in one audit log, and at least one
        acquisition was denied — the contention is real, and (above)
        byte-reproducible."""
        pool = build_pool("frontier", nodes=16, spares=2)
        svc = _service(pool,
                       scheduler=EasyBackfillScheduler(borrow_after=1.0))
        svc.run(_workload(80))
        purposes = {e.purpose for e in pool.spares.log}
        assert "recovery" in purposes
        assert "scheduler" in purposes or "recovery-return" in purposes
        assert pool.spares.denials > 0

    def test_requeue_then_terminal_failure(self):
        """A job whose campaign keeps dying is requeued max_requeues
        times and then marked FAILED — with the nodes returned."""
        pool = build_pool("frontier", nodes=4)
        svc = _service(
            pool,
            fault_mtbf={FaultKind.RANK_FAILURE: 1e-5},
            recovery="restart", max_retries=1, max_requeues=2,
        )
        job = Job(job_id=0, tenant="a", template=_dummy_template(nsteps=4),
                  app_seed=3, submit_time=0.0)
        res = svc.run([job])
        assert job.state is JobState.FAILED
        assert job.attempt == 3  # initial try + 2 requeues
        assert res.requeues == 2
        assert pool.free_nodes == pool.nodes

    def test_rejects_oversized_job_at_submit(self):
        svc = _service(build_pool("frontier", nodes=2))
        bad = Job(job_id=0, tenant="a", template=_dummy_template(nodes=4),
                  app_seed=0, submit_time=0.0)
        with pytest.raises(JobError):
            svc.submit([bad])

    def test_tracer_sees_scheduler_decisions_and_jobs(self):
        tracer = Tracer()
        pool = build_pool("frontier", nodes=8, spares=1)
        svc = _service(pool, tracer=tracer,
                       scheduler=EasyBackfillScheduler(borrow_after=1.0))
        res = svc.run(_workload(30))
        names = {s.name for s in tracer.spans}
        assert "service.run" in names
        assert any(n.startswith("sched.") for n in names)
        assert any(n.startswith("job.") for n in names)
        # the run span covers the whole campaign on the simulated clock
        run = next(s for s in tracer.spans if s.name == "service.run")
        assert run.dur == pytest.approx(
            res.makespan + res.jobs[0].submit_time - run.ts, rel=1e-6, abs=1e-6
        ) or run.dur >= res.makespan * 0.5

    def test_trace_campaigns_threads_tracer_into_apps(self):
        tracer = Tracer()
        svc = _service(build_pool("frontier", nodes=8), tracer=tracer,
                       trace_campaigns=True, fault_mtbf=None)
        svc.run(_workload(10))
        assert any(s.name == "exasky.step" for s in tracer.spans)


# ---------------------------------------------------------------------------
# bit-identity: standalone vs through-service, faults on
# ---------------------------------------------------------------------------


class TestBitIdentity:
    def test_service_matches_standalone_and_failure_free(self):
        """The acceptance contract: every campaign the service ran under
        fault injection ends bit-identical to (a) the same campaign
        executed standalone through the same runner path, and (b) a
        failure-free run with no service and no runner at all."""
        pool = build_pool("summit", nodes=16, spares=2)
        svc = _service(pool,
                       scheduler=EasyBackfillScheduler(borrow_after=1.0))
        res = svc.run(_workload(40, seed=5))
        assert res.completed  # vacuous otherwise
        for j in res.completed:
            clone = Job(job_id=j.job_id, tenant=j.tenant, template=j.template,
                        app_seed=j.app_seed, submit_time=j.submit_time)
            clone.attempt = j.attempt
            clone.checkpoint_interval = j.checkpoint_interval
            _, standalone = execute_campaign(
                clone, pool.machine, seed=svc.seed, fault_mtbf=svc.fault_mtbf,
                cost_model=COST, policy="restart")
            assert standalone == j.result_checksum
            assert failure_free_checksum(j) == j.result_checksum


# ---------------------------------------------------------------------------
# SLO reporting
# ---------------------------------------------------------------------------


class TestSlo:
    def test_slo_arithmetic(self):
        pool = build_pool("frontier", nodes=4)
        jobs = []
        for k, (start, end) in enumerate([(1.0, 3.0), (2.0, 6.0)]):
            j = _job(k, nodes=2, submit=0.0, tenant="a" if k == 0 else "b")
            j.state = JobState.COMPLETED
            j.start_time, j.end_time = start, end
            j.start_kind = "head" if k == 0 else "backfill"
            jobs.append(j)
        slo = compute_slo(jobs, pool, requeues=1)
        assert slo.completed == 2 and slo.makespan == pytest.approx(6.0)
        assert slo.jobs_per_sec == pytest.approx(2 / 6.0)
        assert slo.utilization == pytest.approx((2 * 2 + 2 * 4) / (4 * 6.0))
        assert slo.backfill_fraction == pytest.approx(0.5)
        assert slo.p50_queue_wait == pytest.approx(1.5)
        shares = {t.tenant: t.share for t in slo.tenants}
        assert shares["a"] == pytest.approx(4 / 12) and sum(
            shares.values()) == pytest.approx(1.0)
        assert "jobs/s" in slo.render()

    def test_histogram_quantile_estimates(self):
        reg = MetricsRegistry()
        h = reg.histogram("w", (1.0, 2.0, 4.0))
        for v in (0.5, 1.5, 1.5, 3.0):
            h.observe(v)
        assert h.quantile(0.0) == pytest.approx(1.0)
        assert 1.0 <= h.quantile(0.5) <= 2.0
        assert h.quantile(1.0) == pytest.approx(4.0)
        with pytest.raises(MetricsError):
            h.quantile(1.5)
        assert reg.histogram("empty", (1.0,)).quantile(0.5) == 0.0
