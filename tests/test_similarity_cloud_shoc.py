"""Tests for CoMet CCC, E3SM CRM/WENO, and the SHOC suite."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.benchsuite import SHOC_SUITE, run_benchmark_cuda, run_benchmark_hip
from repro.cloud import (
    advect_step,
    arithmetic_intensity,
    crm_kernel_ensemble,
    crm_step_time,
    linear2_reconstruct,
    optimize_ensemble,
    realtime_throughput,
    weno5_reconstruct,
)
from repro.gpu.occupancy import compute_occupancy
from repro.hardware.gpu import MI250X_GCD
from repro.similarity import (
    ccc_gemm_flops,
    ccc_kernel_spec,
    ccc_similarity,
    cooccurrence_counts_bruteforce,
    cooccurrence_counts_gemm,
    random_allele_data,
)


class TestCCC:
    def test_gemm_counts_match_bruteforce(self):
        data = random_allele_data(12, 40, seed=0)
        np.testing.assert_array_equal(
            cooccurrence_counts_gemm(data), cooccurrence_counts_bruteforce(data)
        )

    def test_fp16_path_is_exact(self):
        """The reduced-precision claim: counts are exact in FP16 (§3.6)."""
        data = random_allele_data(16, 200, seed=1)
        np.testing.assert_array_equal(
            cooccurrence_counts_gemm(data, fp16=True),
            cooccurrence_counts_bruteforce(data),
        )

    def test_similarity_symmetric_and_bounded(self):
        data = random_allele_data(10, 60, seed=2)
        sim = ccc_similarity(data)
        np.testing.assert_allclose(sim, sim.T, atol=1e-12)
        assert np.all(sim >= 0.0) and np.all(sim <= 1.0)

    def test_identical_vectors_maximize_similarity(self):
        data = random_allele_data(6, 80, seed=3)
        data[3] = data[0]
        sim = ccc_similarity(data)
        # pair (0,3) must be at least as similar as any pair involving 0
        others = [sim[0, j] for j in range(6) if j not in (0, 3)]
        assert sim[0, 3] >= max(others) - 1e-12

    def test_counts_sum_to_fields(self):
        data = random_allele_data(8, 33, seed=4)
        counts = cooccurrence_counts_gemm(data)
        np.testing.assert_allclose(counts.sum(axis=(0, 1)), 33.0)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=2, max_value=10), st.integers(min_value=5, max_value=50))
    def test_property_gemm_equals_bruteforce(self, n, m):
        data = random_allele_data(n, m, seed=n * m)
        np.testing.assert_array_equal(
            cooccurrence_counts_gemm(data, fp16=True),
            cooccurrence_counts_bruteforce(data),
        )

    def test_kernel_spec_is_matrix_engine_fp16(self):
        spec = ccc_kernel_spec(4096, 1 << 16)
        assert spec.uses_matrix_engine
        assert spec.precision.value == "fp16"
        assert ccc_gemm_flops(4096, 1 << 16) > 0


class TestWeno:
    @staticmethod
    def cell_averages(n: int) -> tuple[np.ndarray, np.ndarray]:
        xs = np.linspace(0, 2 * np.pi, n, endpoint=False)
        h = 2 * np.pi / n
        ubar = (np.cos(xs - h / 2) - np.cos(xs + h / 2)) / h
        exact_faces = np.sin(xs + h / 2)
        return ubar, exact_faces

    def test_fifth_order_on_smooth_data(self):
        errs = []
        for n in (16, 32, 64):
            ubar, exact = self.cell_averages(n)
            errs.append(np.abs(weno5_reconstruct(ubar) - exact).max())
        order1 = np.log2(errs[0] / errs[1])
        order2 = np.log2(errs[1] / errs[2])
        assert order1 > 4.5 and order2 > 4.5

    def test_second_order_linear_scheme(self):
        errs = []
        for n in (32, 64):
            ubar, exact = self.cell_averages(n)
            errs.append(np.abs(linear2_reconstruct(ubar) - exact).max())
        assert 1.5 < np.log2(errs[0] / errs[1]) < 2.5

    def test_non_oscillatory_at_discontinuity(self):
        u = np.zeros(64)
        u[16:32] = 1.0
        face = weno5_reconstruct(u)
        assert face.min() > -1e-6 and face.max() < 1.0 + 1e-6

    def test_advection_essentially_non_oscillatory(self):
        """ENO means small bounded overshoots, never Gibbs-scale ones.

        (The stepper is forward Euler, not SSP-RK3, so tiny over/undershoot
        is expected; a linear 5th-order scheme would overshoot by ~10 %.)
        """
        u = np.zeros(64)
        u[10:20] = 1.0
        for _ in range(50):
            u = advect_step(u, 0.3, scheme="weno5")
        assert u.min() > -2e-2 and u.max() < 1.0 + 2e-2

    def test_advection_conserves_mass(self):
        rng = np.random.default_rng(0)
        u = rng.uniform(0, 1, 32)
        total = u.sum()
        for _ in range(10):
            u = advect_step(u, 0.4)
        assert u.sum() == pytest.approx(total, rel=1e-12)

    def test_intensity_claim(self):
        """§3.5: WENO raises arithmetic intensity substantially."""
        assert arithmetic_intensity("weno5") > 5 * arithmetic_intensity("linear2")

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            advect_step(np.zeros(8), 0.0)
        with pytest.raises(ValueError):
            advect_step(np.zeros(8), 0.5, scheme="upwind7")
        with pytest.raises(ValueError):
            arithmetic_intensity("spectral")


class TestCrm:
    def test_ensemble_shape(self):
        ks = crm_kernel_ensemble(columns=16)
        assert len(ks) == 42
        assert any(k.registers_per_thread > 256 for k in ks)  # the WENO kernels

    def test_optimization_removes_spills(self):
        ks = crm_kernel_ensemble(columns=16)
        opt = optimize_ensemble(ks, MI250X_GCD)
        for k in opt:
            assert not compute_occupancy(k, MI250X_GCD).spills

    def test_optimization_reduces_launch_count(self):
        ks = crm_kernel_ensemble(columns=16)
        opt = optimize_ensemble(ks, MI250X_GCD)
        assert len(opt) < len(ks)

    def test_full_optimization_speeds_up_step(self):
        """Fusion + fission + async streams + pool allocator (§3.5)."""
        ks = crm_kernel_ensemble(columns=16)
        opt = optimize_ensemble(ks, MI250X_GCD)
        base = crm_step_time(ks, MI250X_GCD, same_stream_async=False,
                             pool_allocator=False)
        tuned = crm_step_time(opt, MI250X_GCD, same_stream_async=True,
                              pool_allocator=True)
        assert tuned.total < base.total / 3

    def test_each_lever_helps_individually(self):
        ks = crm_kernel_ensemble(columns=16)
        base = crm_step_time(ks, MI250X_GCD, same_stream_async=False,
                             pool_allocator=False)
        only_async = crm_step_time(ks, MI250X_GCD, same_stream_async=True,
                                   pool_allocator=False)
        only_pool = crm_step_time(ks, MI250X_GCD, same_stream_async=False,
                                  pool_allocator=True)
        assert only_async.kernel_time < base.kernel_time
        assert only_pool.allocation_time < base.allocation_time

    def test_latency_matters_more_at_small_workloads(self):
        """Strong scaling (§3.5): smaller per-GPU work = more latency-bound."""
        def latency_share(columns: int) -> float:
            ks = crm_kernel_ensemble(columns=columns)
            t = crm_step_time(ks, MI250X_GCD, same_stream_async=False,
                              pool_allocator=False)
            launch = sum(
                MI250X_GCD.kernel_launch_latency * k.launch_count for k in ks
            )
            return launch / t.total

        assert latency_share(8) > latency_share(2048)

    def test_throughput_metric(self):
        assert realtime_throughput(0.01, dt_model_seconds=10.0) == pytest.approx(1000.0)
        with pytest.raises(ValueError):
            realtime_throughput(0.0)

    def test_fuse_group_validated(self):
        with pytest.raises(ValueError):
            optimize_ensemble([], MI250X_GCD, fuse_group=0)


class TestShocSuite:
    def test_thirteen_benchmarks(self):
        assert len(SHOC_SUITE) == 13
        names = {b.name for b in SHOC_SUITE}
        assert {"GEMM", "FFT", "MD", "Sort", "S3D", "Triad"} - names == {"Triad"}

    def test_cuda_sources_are_pure_cuda(self):
        for b in SHOC_SUITE:
            assert "cuda" in b.cuda_source
            assert "hip" not in b.cuda_source

    def test_hip_runs_translated_source(self):
        r = run_benchmark_hip(SHOC_SUITE[0])
        assert r.backend == "hip"
        assert r.total_ms > 0

    def test_hip_within_a_percent_of_cuda(self):
        """Figure 1's headline on every benchmark."""
        for b in SHOC_SUITE:
            rc = run_benchmark_cuda(b)
            rh = run_benchmark_hip(b)
            ratio = rc.total_ms / rh.total_ms
            assert 0.97 < ratio <= 1.001, f"{b.name}: {ratio}"

    def test_transfer_vs_kernel_split(self):
        rc = run_benchmark_cuda(next(b for b in SHOC_SUITE if b.name == "GEMM"))
        assert rc.transfer_ms > 0
        assert rc.kernel_ms > 0
        assert rc.total_ms == pytest.approx(rc.kernel_ms + rc.transfer_ms, rel=0.2)
