"""Tests for the GESTS substrate: distributed FFTs and the PSDNS solver."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.hardware import FRONTIER, SUMMIT
from repro.hardware.interconnect import SLINGSHOT_11
from repro.mpisim import DecompositionError
from repro.spectral import (
    PencilFFT3D,
    PseudoSpectralNS,
    SlabFFT3D,
    psdns_step_time,
)


def random_field(n: int, seed: int = 0) -> np.ndarray:
    rng = np.random.default_rng(seed)
    return rng.normal(size=(n, n, n)) + 1j * rng.normal(size=(n, n, n))


class TestSlabFFT:
    def test_forward_matches_fftn(self):
        x = random_field(16)
        s = SlabFFT3D(16, 4, fabric=SLINGSHOT_11)
        spec = s.forward(s.scatter(x))
        np.testing.assert_allclose(s.gather_spectrum(spec), np.fft.fftn(x), atol=1e-10)

    def test_roundtrip(self):
        x = random_field(16, seed=1)
        s = SlabFFT3D(16, 8, fabric=SLINGSHOT_11)
        back = s.inverse(s.forward(s.scatter(x)))
        np.testing.assert_allclose(s.gather_slabs(back), x, atol=1e-10)

    def test_one_transpose_per_direction(self):
        s = SlabFFT3D(16, 4, fabric=SLINGSHOT_11)
        s.forward(s.scatter(random_field(16)))
        assert s.stats.transposes == 1
        assert s.stats.comm_time > 0

    def test_single_rank_no_op_still_correct(self):
        x = random_field(8, seed=2)
        s = SlabFFT3D(8, 1, fabric=SLINGSHOT_11)
        spec = s.forward(s.scatter(x))
        np.testing.assert_allclose(s.gather_spectrum(spec), np.fft.fftn(x), atol=1e-10)

    def test_rank_limit_enforced(self):
        with pytest.raises(DecompositionError):
            SlabFFT3D(8, 16, fabric=SLINGSHOT_11)

    def test_input_shape_validated(self):
        s = SlabFFT3D(16, 4, fabric=SLINGSHOT_11)
        with pytest.raises(ValueError):
            s.scatter(np.zeros((8, 8, 8)))

    @settings(max_examples=10, deadline=None)
    @given(st.sampled_from([(8, 2), (8, 4), (16, 4), (12, 3)]))
    def test_property_roundtrip(self, cfg):
        n, p = cfg
        x = random_field(n, seed=n * p)
        s = SlabFFT3D(n, p, fabric=SLINGSHOT_11)
        np.testing.assert_allclose(
            s.gather_slabs(s.inverse(s.forward(s.scatter(x)))), x, atol=1e-9
        )


class TestPencilFFT:
    def test_forward_matches_fftn(self):
        x = random_field(16, seed=3)
        p = PencilFFT3D(16, 4, 4, fabric=SLINGSHOT_11)
        spec = p.forward(p.scatter(x))
        np.testing.assert_allclose(p.gather_spectrum(spec), np.fft.fftn(x), atol=1e-10)

    def test_two_transposes(self):
        p = PencilFFT3D(16, 2, 4, fabric=SLINGSHOT_11)
        p.forward(p.scatter(random_field(16, seed=4)))
        assert p.stats.transposes == 2

    def test_pencils_exceed_slab_rank_limit(self):
        # N=8 grid on 16 ranks is impossible for slabs but fine for pencils
        p = PencilFFT3D(8, 4, 4, fabric=SLINGSHOT_11)
        assert p.nranks == 16
        x = random_field(8, seed=5)
        spec = p.forward(p.scatter(x))
        np.testing.assert_allclose(p.gather_spectrum(spec), np.fft.fftn(x), atol=1e-10)

    def test_asymmetric_grid(self):
        x = random_field(12, seed=6)
        p = PencilFFT3D(12, 2, 6, fabric=SLINGSHOT_11)
        spec = p.forward(p.scatter(x))
        np.testing.assert_allclose(p.gather_spectrum(spec), np.fft.fftn(x), atol=1e-10)


class TestPseudoSpectralNS:
    def test_taylor_green_stays_divergence_free(self):
        ns = PseudoSpectralNS(16, viscosity=0.05)
        ns.set_taylor_green()
        for _ in range(10):
            ns.step(0.01)
            assert ns.max_divergence() < 1e-10

    def test_energy_decays_viscously(self):
        ns = PseudoSpectralNS(16, viscosity=0.1)
        ns.set_taylor_green()
        e0 = ns.energy()
        for _ in range(20):
            ns.step(0.01)
        assert ns.energy() < e0

    def test_early_time_decay_rate_matches_stokes(self):
        """Pure viscous decay of the TG mode: E ∝ exp(−2ν k² t), k²=3."""
        nu = 0.2
        ns = PseudoSpectralNS(16, viscosity=nu)
        ns.set_taylor_green()
        e0 = ns.energy()
        t = 0.1
        for _ in range(10):
            ns.step(t / 10)
        expected = e0 * np.exp(-2 * nu * 3.0 * t)
        assert ns.energy() == pytest.approx(expected, rel=0.05)

    def test_zero_viscosity_conserves_energy_short_time(self):
        ns = PseudoSpectralNS(16, viscosity=0.0)
        ns.set_taylor_green()
        e0 = ns.energy()
        for _ in range(5):
            ns.step(0.005)
        assert ns.energy() == pytest.approx(e0, rel=1e-3)

    def test_custom_velocity_projected(self):
        ns = PseudoSpectralNS(8)
        rng = np.random.default_rng(0)
        ns.set_velocity(*(rng.normal(size=(8, 8, 8)) for _ in range(3)))
        assert ns.max_divergence() < 1e-10

    def test_input_validation(self):
        with pytest.raises(ValueError):
            PseudoSpectralNS(7)
        ns = PseudoSpectralNS(8)
        with pytest.raises(ValueError):
            ns.step(-0.1)


class TestPsdnsPerformance:
    def test_frontier_fom_exceeds_summit_by_4to6x(self):
        """The CAAR target (§3.3): FOM improvement >4x (measured >5x)."""
        ts = psdns_step_time(SUMMIT, 18432, 18432, decomposition="slabs")
        tf = psdns_step_time(FRONTIER, 32768, 32768, decomposition="slabs")
        ratio = tf.fom(32768) / ts.fom(18432)
        assert 3.5 < ratio < 6.5

    def test_slabs_beat_pencils_at_same_ranks(self):
        """One fewer transpose cycle (§3.3)."""
        slab = psdns_step_time(FRONTIER, 8192, 8192, decomposition="slabs")
        pencil = psdns_step_time(FRONTIER, 8192, 8192, decomposition="pencils")
        assert slab.total < pencil.total

    def test_pencils_reach_rank_counts_slabs_cannot(self):
        with pytest.raises(DecompositionError):
            psdns_step_time(FRONTIER, 4096, 8192, decomposition="slabs")
        t = psdns_step_time(FRONTIER, 4096, 8192, decomposition="pencils")
        assert t.total > 0

    def test_cpu_machine_rejected(self):
        from repro.hardware import CORI

        with pytest.raises(ValueError):
            psdns_step_time(CORI, 1024, 64)

    def test_unknown_decomposition(self):
        with pytest.raises(ValueError):
            psdns_step_time(FRONTIER, 1024, 64, decomposition="bricks")

    def test_fom_definition(self):
        t = psdns_step_time(FRONTIER, 2048, 512)
        assert t.fom(2048) == pytest.approx(2048.0**3 / t.total)
