"""Tests for the autotuning navigator (repro.tuning).

Covers the knob space, the seeded search strategies, the three tuning
domains, and the PR's cross-cutting contracts:

* **differential** — a tuned launch config changes only the modeled
  device timeline of a Pele campaign, never its numerical state;
* **determinism** — the same (seed, budget) reproduces the tuning report
  byte-for-byte across two fresh interpreter processes;
* **bench `--quick` coverage** — every benchmark module that records
  into ``BENCH_repro_speed.json`` must expose a ``--quick`` smoke and CI
  must actually invoke it (the drift this PR fixed: bench_resilience and
  bench_observability recorded bands without a CI-exercised smoke).
"""

import hashlib
import json
import os
import subprocess
import sys
import textwrap
from pathlib import Path

import numpy as np
import pytest

from repro.apps.pele import PeleChemistryCampaign
from repro.gpu import Device, KernelSpec, time_kernel_sequence
from repro.hardware.catalog import FRONTIER, SUMMIT, TUNING_MACHINES
from repro.hardware.gpu import V100
from repro.tuning import (
    CheckpointFidelity,
    KernelConfig,
    TuningBudget,
    build_workload,
    grid_search,
    kernel_config_grid,
    run_navigator,
    seeded_subset,
    select_algorithm,
    sequence_time,
    successive_halving,
    tune_checkpoint_interval,
    tune_collectives,
)

REPO = Path(__file__).resolve().parents[1]


# -- knob space -----------------------------------------------------------------


class TestKernelConfig:
    def test_grid_starts_with_identity(self):
        grid = kernel_config_grid()
        assert grid[0].is_default
        assert len(grid) == len(set(grid))  # no duplicate configs

    def test_validation(self):
        with pytest.raises(ValueError):
            KernelConfig(workgroup_size=16)
        with pytest.raises(ValueError):
            KernelConfig(register_cap=8)
        with pytest.raises(ValueError):
            KernelConfig(fission_parts=0)

    def test_identity_apply_is_noop(self):
        workload = build_workload("pele", SUMMIT)
        kernels = list(workload.kernels)
        assert KernelConfig().apply(kernels, workload.device) == kernels

    def test_describe_round_trips(self):
        for config in kernel_config_grid():
            assert KernelConfig.from_dict(config.describe()) == config

    def test_fission_conserves_work_and_launch_count(self):
        k = KernelSpec(name="hot", flops=1e12, bytes_read=1e9,
                       bytes_written=1e8, launch_count=7,
                       registers_per_thread=128)
        config = KernelConfig(fission_parts=2)
        pieces = config.apply([k], V100)
        assert len(pieces) == 2
        assert all(p.launch_count == 7 for p in pieces)
        assert sum(p.flops for p in pieces) == pytest.approx(k.flops)

    def test_tuned_sequence_time_matches_manual(self):
        workload = build_workload("e3sm", SUMMIT)
        config = KernelConfig(same_stream_async=True)
        manual = time_kernel_sequence(list(workload.kernels),
                                      workload.device,
                                      same_stream_async=True)
        assert sequence_time(config, list(workload.kernels), workload.device,
                             default_async=False) == manual


# -- search strategies ----------------------------------------------------------


class TestSearch:
    def test_seeded_subset_keeps_identity_and_is_deterministic(self):
        seq = np.random.SeedSequence(7)
        a = seeded_subset(100, 10, np.random.SeedSequence(7))
        b = seeded_subset(100, 10, seq)
        assert a == b
        assert a[0] == 0 and len(a) == 10 == len(set(a))
        assert a == sorted(a)

    def test_seeded_subset_full_when_budget_covers(self):
        assert seeded_subset(5, 10, np.random.SeedSequence(0)) == list(range(5))

    def test_grid_search_ties_break_early(self):
        result = grid_search([3, 1, 1, 2], float, budget=10,
                             seed_seq=np.random.SeedSequence(0))
        assert result.best_index == 1
        assert result.evaluated == 4

    def test_successive_halving_eliminates_and_finds_optimum(self):
        calls = []

        def objective(c, rung):
            calls.append((c, rung))
            return abs(c - 6) + (0.1 if rung == "cheap" else 0.0)

        result, finals = successive_halving(
            list(range(10)), objective, ["cheap", "trusted"])
        assert result.best_index == 6
        n_cheap = sum(1 for _, r in calls if r == "cheap")
        n_trusted = sum(1 for _, r in calls if r == "trusted")
        assert n_cheap == 10 and n_trusted == 5  # half survive
        assert set(finals) <= set(range(10)) and len(finals) == 5


# -- collective selection -------------------------------------------------------


class TestCollectives:
    def test_selection_never_worse_than_default(self):
        for machine in TUNING_MACHINES:
            for cell in tune_collectives(machine):
                assert cell.time <= cell.default_time
                assert cell.speedup >= 1.0

    def test_allgather_crossover_on_frontier(self):
        """Ring allgather pays (p-1) latency terms; at scalar sizes on
        75k ranks recursive doubling wins by orders of magnitude."""
        cell = select_algorithm(FRONTIER, "allgather", 8)
        assert cell.default_algorithm == "ring"
        assert cell.algorithm == "recursive-doubling"
        assert cell.speedup > 100.0

    def test_tie_bias_keeps_default(self):
        """Small-message allreduce: recursive doubling (the default) is
        already the latency-optimal choice, so the tuner keeps it."""
        cell = select_algorithm(SUMMIT, "allreduce", 8)
        assert cell.algorithm == cell.default_algorithm == "recursive-doubling"

    def test_unknown_op_rejected(self):
        with pytest.raises(KeyError, match="unknown collective"):
            select_algorithm(SUMMIT, "allscatter", 8)


# -- checkpoint-interval tuning -------------------------------------------------


class TestCheckpointTuning:
    RUNGS = (
        CheckpointFidelity(nsteps=48, seeds=(0,)),
        CheckpointFidelity(nsteps=192, seeds=(0, 1)),
    )

    def test_tuned_beats_checkpoint_every_step(self):
        result = tune_checkpoint_interval(SUMMIT, rungs=self.RUNGS,
                                          nparticles=64)
        assert result.tuned_interval_steps > result.default_interval_steps
        assert result.tuned_overhead < result.default_overhead
        assert result.speedup > 1.0
        assert result.campaigns > 0

    def test_tuned_interval_agrees_with_daly(self):
        """The measured optimum must land within 2x of Young/Daly's W*
        (the same acceptance band experiments.resilience_at_scale uses)."""
        result = tune_checkpoint_interval(SUMMIT, rungs=self.RUNGS,
                                          nparticles=64)
        assert result.daly_agreement_factor <= 2.0

    def test_reproducible(self):
        a = tune_checkpoint_interval(SUMMIT, rungs=self.RUNGS, nparticles=64)
        b = tune_checkpoint_interval(SUMMIT, rungs=self.RUNGS, nparticles=64)
        assert a == b


# -- differential: tuned config never touches numerics --------------------------


class TestTunedCampaignDifferential:
    def test_tuned_pele_campaign_bit_identical_numerics(self):
        """A tuned launch config reshapes the device timeline (launch
        counts, modeled clock) but the campaign state (T, C, steps_done)
        stays bit-identical to the default-config run."""
        default_dev, tuned_dev = Device(V100), Device(V100)
        default = PeleChemistryCampaign(ncells=4, seed=3, device=default_dev)
        tuned = PeleChemistryCampaign(
            ncells=4, seed=3, device=tuned_dev,
            kernel_config=KernelConfig(fission_parts=2))
        for _ in range(3):
            default.step()
            tuned.step()

        assert tuned.steps_done == default.steps_done == 3
        assert np.array_equal(tuned.T, default.T)
        assert np.array_equal(tuned.C, default.C)
        # ... while the modeled execution genuinely changed:
        assert tuned_dev.kernel_launches == 2 * default_dev.kernel_launches
        assert tuned_dev.elapsed != default_dev.elapsed

    def test_step_costs_unchanged(self):
        """The resilience-facing step cost is part of the numerics
        contract too: tuning must not change what the runner charges."""
        tuned = PeleChemistryCampaign(
            ncells=4, seed=3, device=Device(V100),
            kernel_config=KernelConfig(register_cap=64,
                                       same_stream_async=True))
        default = PeleChemistryCampaign(ncells=4, seed=3)
        assert tuned.step() == default.step()


# -- determinism across processes -----------------------------------------------


_DETERMINISM_SCRIPT = textwrap.dedent("""
    import hashlib
    from repro.hardware.catalog import SUMMIT
    from repro.tuning import CheckpointFidelity, TuningBudget, run_navigator

    budget = TuningBudget(
        kernel_evals=12,
        checkpoint_rungs=(CheckpointFidelity(nsteps=24, seeds=(0,)),
                          CheckpointFidelity(nsteps=48, seeds=(0, 1))),
        checkpoint_particles=48,
    )
    report = run_navigator(seed=11, budget=budget, machines=(SUMMIT,),
                           apps=("pele", "gamess", "e3sm"))
    payload = report.to_json().encode()
    print(len(payload), hashlib.sha256(payload).hexdigest())
""")


class TestDeterminism:
    def test_report_byte_identical_across_processes(self):
        """Same seed + budget => byte-identical canonical report, run in
        two fresh interpreters (no shared import-order or hash state)."""
        env = dict(os.environ,
                   PYTHONPATH=str(REPO / "src"),
                   PYTHONHASHSEED="random")
        outputs = []
        for _ in range(2):
            proc = subprocess.run(
                [sys.executable, "-c", _DETERMINISM_SCRIPT],
                capture_output=True, text=True, env=env, check=True,
                cwd=str(REPO))
            outputs.append(proc.stdout.strip())
        assert outputs[0] == outputs[1]
        assert outputs[0]  # non-empty: the script actually printed

    def test_in_process_rerun_identical(self):
        budget = TuningBudget(
            kernel_evals=12,
            checkpoint_rungs=(CheckpointFidelity(nsteps=24, seeds=(0,)),),
            checkpoint_particles=48,
        )
        kwargs = dict(seed=5, budget=budget, machines=(SUMMIT,),
                      apps=("pele", "coast"))
        assert (run_navigator(**kwargs).to_json()
                == run_navigator(**kwargs).to_json())


# -- bench --quick drift guard --------------------------------------------------


class TestBenchQuickCoverage:
    def test_every_recording_bench_has_ci_exercised_quick_path(self):
        """Every benchmark that records into (or gates against)
        BENCH_repro_speed.json must ship a ``--quick`` smoke AND CI must
        invoke it — otherwise recorded bands drift unexercised until the
        full bench is rerun by hand."""
        ci = (REPO / ".github" / "workflows" / "ci.yml").read_text()
        missing = []
        for path in sorted((REPO / "benchmarks").glob("bench_*.py")):
            text = path.read_text()
            if "BENCH_repro_speed.json" not in text:
                continue
            if "--quick" not in text:
                missing.append(f"{path.name}: no --quick path in module")
            if f"{path.name} --quick" not in ci:
                missing.append(f"{path.name}: CI never runs '--quick'")
        assert not missing, (
            "bench modules recording into BENCH_repro_speed.json without "
            "a CI-exercised --quick smoke:\n  " + "\n  ".join(missing))

    def test_recorded_tuning_block_consistent(self):
        """If the full bench has recorded a tuning block, its summary
        counters must agree with its own rows (stale hand-edits fail)."""
        path = REPO / "BENCH_repro_speed.json"
        if not path.exists():
            pytest.skip("no recorded bench results")
        data = json.loads(path.read_text())
        if "tuning" not in data:
            pytest.skip("tuning block not recorded yet")
        block = data["tuning"]
        rows = block["kernel"]
        improved = {r["app"] for r in rows if r["speedup"] > 1.0}
        assert block["improved_apps"] == sorted(improved)
        assert len(improved) >= 6  # the ISSUE acceptance floor


def _sha(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()


class TestReportShape:
    @pytest.fixture(scope="class")
    def report(self):
        budget = TuningBudget(
            kernel_evals=24,
            checkpoint_rungs=(CheckpointFidelity(nsteps=24, seeds=(0,)),),
            checkpoint_particles=48,
        )
        return run_navigator(seed=0, budget=budget, machines=(SUMMIT,),
                             apps=("pele", "e3sm", "gests"))

    def test_report_covers_all_domains(self, report):
        assert {r.app for r in report.kernel} == {"pele", "e3sm", "gests"}
        assert [c.machine for c in report.checkpoint] == ["Summit"]
        assert len(report.collectives) == 16  # 4 ops x 4 sizes

    def test_json_round_trip_stable(self, report):
        assert _sha(report.to_json()) == _sha(report.to_json())
        parsed = json.loads(report.to_json())
        assert parsed["seed"] == 0
        assert len(parsed["kernel"]) == 3

    def test_render_mentions_every_app(self, report):
        text = report.render()
        for app in ("pele", "e3sm", "gests"):
            assert app in text

    def test_kernel_result_lookup(self, report):
        r = report.kernel_result("pele", "Summit")
        assert r.evaluated <= 24
        with pytest.raises(KeyError):
            report.kernel_result("pele", "Perlmutter")

    def test_speedups_are_finite_and_positive(self, report):
        for r in report.kernel:
            assert np.isfinite(r.speedup) and r.speedup > 0
        for c in report.collectives:
            assert np.isfinite(c.speedup) and c.speedup >= 1.0


class TestWorkloads:
    def test_all_apps_build_on_both_machines(self):
        for machine in TUNING_MACHINES:
            for app in ("pele", "comet", "exasky", "gamess", "lsms",
                        "nuccor", "lammps", "e3sm", "gests", "coast"):
                w = build_workload(app, machine)
                assert w.kernels, f"{app} on {machine.name} has no kernels"
                assert w.machine == machine.name

    def test_unknown_app_rejected(self):
        with pytest.raises(KeyError, match="unknown app"):
            build_workload("xgc", SUMMIT)

    def test_workload_construction_deterministic(self):
        a = build_workload("lammps", FRONTIER)
        b = build_workload("lammps", FRONTIER)
        assert a.kernels == b.kernels


class TestMachineNames:
    def test_machine_names_match_catalog(self):
        assert [m.name for m in TUNING_MACHINES] == ["Summit", "Frontier"]
