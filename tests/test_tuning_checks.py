"""The generated regression suite: ReFrame-style checks under pytest.

One seeded quick navigator pass runs at collection time; every tuned
(app, machine, knob-set) result it produced becomes a parameterized
pytest case via :func:`repro.tuning.generate_checks`.  Each case
re-derives its measurement from the check descriptor alone and asserts
(a) it lands inside the recorded reference band and (b) wherever the
navigator claimed a win, tuned still beats default by the recorded
margin.

The suite also asserts the ISSUE acceptance floors directly: at least 20
instantiated cases, at least 6 of the ten apps improved, and the whole
check list reproduced bit-identically from the same seed.
"""

import pytest

from repro.tuning import TuningBudget, generate_checks, run_navigator

SEED = 0

REPORT = run_navigator(seed=SEED, budget=TuningBudget.quick())
CHECKS = generate_checks(REPORT)


@pytest.mark.parametrize("check", CHECKS, ids=[c.name for c in CHECKS])
def test_generated_check(check):
    measured = check.assert_ok()
    assert measured >= 0.0


def test_suite_instantiates_enough_cases():
    assert len(CHECKS) >= 20
    domains = {c.domain for c in CHECKS}
    assert domains == {"kernel", "checkpoint", "collective"}
    systems = {c.system for c in CHECKS}
    assert systems == {"Summit", "Frontier"}


def test_improved_apps_floor():
    """ISSUE acceptance: strictly-better-than-default config on >= 6 of
    the ten apps, on at least one machine."""
    improved = REPORT.improved_apps()
    assert len(improved) >= 6, f"only {improved} improved"


def test_checks_regenerate_bit_identically():
    """Same seed + budget => the exact same generated suite."""
    again = generate_checks(
        run_navigator(seed=SEED, budget=TuningBudget.quick()))
    assert again == CHECKS


def test_every_kernel_cell_has_a_check():
    kernel_names = {c.name for c in CHECKS if c.domain == "kernel"}
    assert len(kernel_names) == len(REPORT.kernel) == 20  # 10 apps x 2
